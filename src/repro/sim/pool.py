"""A worker pool that survives its workers.

``multiprocessing.Pool`` cannot: a worker that segfaults (or is OOM-killed,
or hard-exits via a fault-injection directive) takes its in-flight task's
result with it, and ``imap_unordered`` then blocks forever waiting for a
completion that will never arrive — one dead worker wedges the whole
drain.  Nor can it attribute a hung task to a process, so per-job
wall-clock timeouts are unimplementable on top of it.

:class:`FaultTolerantPool` replaces it for the sweep runner with exactly
the machinery fault containment needs, and nothing else:

* **One process, one pipe, one task.**  Each worker is a plain
  ``Process`` with a duplex ``Pipe``; the parent sends at most one task
  down a worker's pipe at a time, so every in-flight task is attributed
  to exactly one process and "when did this task start" is knowable.
* **Death is an event, not a hang.**  The parent multiplexes over every
  busy worker's pipe *and* its process ``sentinel`` with
  :func:`multiprocessing.connection.wait`; a worker that dies without
  replying surfaces as a ``crash`` event naming the task it took down.
  The pool respawns a replacement lazily at the next dispatch, so one
  crash costs one process start, not a pool rebuild.
* **Deadlines kill, never wait.**  A task dispatched under a timeout gets
  ``now + timeout`` as its deadline; when it passes, the parent SIGKILLs
  the worker (a hung worker by definition does not respond to polite
  signals), joins it, and emits a ``timeout`` event.
* **Resubmission during iteration.**  :meth:`run_batch` is a generator of
  :class:`PoolEvent`; the consumer (the runner's retry loop) may call
  :meth:`resubmit` while iterating to queue another attempt — optionally
  delayed for backoff — and the batch ends only when every submitted
  attempt has produced an event.

The target callable, like ``Pool``'s, must be a module-level function
(pickled by reference under spawn) and is applied to each task payload in
the worker.  Exceptions *inside* the target are the target's own business
— the sweep runner's ``_execute_indexed`` converts them into result
payloads — so anything that escapes to the worker loop is treated as
worker death by the parent, which is what it behaves like.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from itertools import count
from multiprocessing import connection
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

#: Ceiling on one multiplex wait, so external state changes the parent
#: cannot select on (none today) would still be noticed promptly.
_MAX_WAIT = 5.0


@dataclass
class PoolEvent:
    """One terminal observation about one dispatched task.

    ``kind`` is ``"result"`` (``value`` holds whatever the target
    returned), ``"crash"`` (the worker died mid-task; ``exitcode`` is its
    ``Process.exitcode``, negative for signal deaths), or ``"timeout"``
    (the task outlived its deadline and its worker was killed after
    ``elapsed`` seconds).
    """

    kind: str
    task_id: int
    value: Any = None
    exitcode: Optional[int] = None
    elapsed: float = 0.0


@dataclass
class _QueueEntry:
    task_id: int
    payload: Any
    ready_at: float
    sequence: int


class _Worker:
    """Parent-side handle: the process, its pipe, and its current task."""

    __slots__ = ("process", "conn", "task_id", "deadline", "started_at")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task_id: Optional[int] = None
        self.deadline: Optional[float] = None
        self.started_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task_id is not None


def _worker_main(conn, target, initializer, initargs) -> None:
    """Worker process body: initialize once, then serve tasks until EOF.

    A ``None`` task is the shutdown handshake.  ``KeyboardInterrupt``
    (Ctrl-C fans out to the whole process group) exits quietly — the
    parent is tearing the pool down anyway — and a vanished parent
    (broken pipe) ends the loop rather than raising into a dead ear.
    """
    # A fork-started worker inherits the parent's signal dispositions.
    # Under the asyncio sweep service the parent routes SIGTERM into the
    # event loop's self-pipe, and inheriting that handler makes the
    # worker ignore terminate() — the pool join would then wedge forever
    # on an unkillable child.  Restore the default action so terminate()
    # terminates no matter what the parent had installed at fork time.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        if initializer is not None:
            initializer(*initargs)
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            _, payload = task
            result = target(payload)
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    except KeyboardInterrupt:
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class FaultTolerantPool:
    """A crash- and hang-surviving replacement for ``multiprocessing.Pool``.

    Args:
        context: a multiprocessing context (``get_context(...)``), which
            fixes the start method for every worker.
        processes: worker-process ceiling.  Dead workers are replaced
            lazily, so the pool converges back to this size under load.
        target: module-level callable applied to each task payload.
        initializer/initargs: run once in each worker before serving
            (exactly ``Pool``'s contract; respawned workers run it too).

    Lifecycle mirrors ``Pool``: workers start eagerly (so batch one pays
    no per-dispatch spawn latency), :meth:`terminate` kills them,
    :meth:`join` reaps them; both are idempotent.
    """

    #: Seconds a reap waits for SIGTERM to land before escalating to
    #: SIGKILL (see :meth:`_discard`).
    _REAP_GRACE = 5.0

    def __init__(
        self,
        context,
        processes: int,
        target: Callable[[Any], Any],
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
    ) -> None:
        self._context = context
        self._processes = max(1, processes)
        self._target = target
        self._initializer = initializer
        self._initargs = initargs
        self._workers: List[_Worker] = []
        self._queue: List[_QueueEntry] = []
        self._sequence = count()
        self._outstanding = 0
        self._terminated = False
        try:
            from multiprocessing import resource_tracker

            # Start the resource tracker *before* the first fork: a worker
            # that attaches a shared-memory segment registers it with the
            # tracker it inherited, and a worker forked tracker-less spawns
            # its own — which then warns about (and tries to re-unlink)
            # segments the parent already cleaned up.
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platforms without a tracker
            pass
        for _ in range(self._processes):
            self._spawn_worker()

    # --------------------------------------------------------------- spawning
    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._target, self._initializer, self._initargs),
            daemon=True,  # like Pool workers: never outlive the parent
        )
        process.start()
        # The parent's copy of the child end must close so a dead worker
        # reads as EOF/sentinel instead of a silently writable pipe.
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _discard(self, worker: _Worker, kill: bool = False) -> None:
        """Remove a worker, reaping the process (idempotent per worker).

        The reap is bounded: a worker that survives SIGTERM (a handler
        installed by an initializer, a blocked signal) is escalated to
        SIGKILL after ``_REAP_GRACE`` seconds rather than wedging the
        teardown — close() must always return.
        """
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(self._REAP_GRACE)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker in self._workers:
            self._workers.remove(worker)

    # --------------------------------------------------------------- batching
    def run_batch(
        self, tasks: Iterable[Tuple[int, Any]], timeout: Optional[float] = None
    ) -> Iterator[PoolEvent]:
        """Dispatch ``(task_id, payload)`` pairs; yield one event per attempt.

        Yields events as they happen, in completion order.  The consumer
        may call :meth:`resubmit` between events; the generator keeps
        running until every submitted attempt (initial or resubmitted) has
        yielded.  Closing the generator early leaves queued entries
        dropped and in-flight workers running — callers that abandon a
        batch must :meth:`terminate`/:meth:`join` (the runner's
        KeyboardInterrupt path does).
        """
        if self._terminated:
            raise RuntimeError("pool was terminated")
        now = time.monotonic()
        for task_id, payload in tasks:
            self._enqueue(task_id, payload, now)
        try:
            while self._outstanding:
                for event in self._step(timeout):
                    self._outstanding -= 1
                    yield event
        finally:
            self._queue.clear()
            self._outstanding = 0
            # An abandoned batch (consumer raised / generator closed) may
            # leave workers mid-task with nowhere to report; kill those so
            # a stale completion cannot leak into the next batch.  A batch
            # consumed to exhaustion has no busy workers — this is free.
            for worker in list(self._workers):
                if worker.busy:
                    self._discard(worker, kill=True)

    def resubmit(self, task_id: int, payload: Any, delay: float = 0.0) -> None:
        """Queue another attempt of ``task_id`` (legal only while a
        :meth:`run_batch` generator is being consumed).  ``delay`` holds
        the attempt back for backoff; the pool keeps draining other tasks
        meanwhile."""
        self._enqueue(task_id, payload, time.monotonic() + max(0.0, delay))

    def _enqueue(self, task_id: int, payload: Any, ready_at: float) -> None:
        self._queue.append(_QueueEntry(task_id, payload, ready_at, next(self._sequence)))
        self._outstanding += 1

    # ------------------------------------------------------------ event loop
    def _step(self, timeout: Optional[float]) -> List[PoolEvent]:
        """One multiplex round: dispatch what is ready, wait, classify."""
        now = time.monotonic()
        self._dispatch(now, timeout)

        busy = [worker for worker in self._workers if worker.busy]
        wait_objects: List[Any] = []
        for worker in busy:
            wait_objects.append(worker.conn)
            wait_objects.append(worker.process.sentinel)

        # Sleep until the earliest actionable moment: a deadline expiring,
        # a delayed retry becoming ready, or _MAX_WAIT as a backstop.
        horizon = now + _MAX_WAIT
        for worker in busy:
            if worker.deadline is not None:
                horizon = min(horizon, worker.deadline)
        for entry in self._queue:
            horizon = min(horizon, entry.ready_at)
        wait_for = max(0.0, horizon - now)

        ready: List[Any] = []
        if wait_objects:
            ready = connection.wait(wait_objects, wait_for)
        elif self._queue:
            time.sleep(min(wait_for, 0.05))

        events: List[PoolEvent] = []
        ready_set = set(ready)
        for worker in list(self._workers):
            if not worker.busy:
                continue
            if worker.conn in ready_set:
                try:
                    value = worker.conn.recv()
                except (EOFError, OSError):
                    events.append(self._crash_event(worker))
                    continue
                task_id = worker.task_id
                worker.task_id = None
                worker.deadline = None
                events.append(PoolEvent(kind="result", task_id=task_id, value=value))
            elif worker.process.sentinel in ready_set:
                events.append(self._crash_event(worker))

        now = time.monotonic()
        for worker in list(self._workers):
            if worker.busy and worker.deadline is not None and now >= worker.deadline:
                events.append(self._timeout_event(worker, now))
        return events

    def _dispatch(self, now: float, timeout: Optional[float]) -> None:
        """Hand every ready queue entry to an idle worker, respawning up to
        the process ceiling.  FIFO by readiness then submission order, so
        fault-plan dispatch ordinals are deterministic."""
        ready = sorted(
            (entry for entry in self._queue if entry.ready_at <= now),
            key=lambda entry: (entry.ready_at, entry.sequence),
        )
        for entry in ready:
            worker = self._idle_worker()
            if worker is None:
                break
            try:
                worker.conn.send((entry.task_id, entry.payload))
            except (BrokenPipeError, OSError):
                # Died while idle (between batches, or during backoff).
                # Replace it and retry this entry on the next round.
                self._discard(worker)
                continue
            self._queue.remove(entry)
            worker.task_id = entry.task_id
            worker.started_at = now
            worker.deadline = None if timeout is None else now + timeout

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers:
            if not worker.busy:
                if worker.process.is_alive():
                    return worker
                self._discard(worker)
                return self._idle_worker()
        if len(self._workers) < self._processes:
            return self._spawn_worker()
        return None

    def _crash_event(self, worker: _Worker) -> PoolEvent:
        task_id = worker.task_id
        elapsed = time.monotonic() - worker.started_at
        exitcode = worker.process.exitcode
        self._discard(worker)
        return PoolEvent(
            kind="crash", task_id=task_id, exitcode=exitcode, elapsed=elapsed
        )

    def _timeout_event(self, worker: _Worker, now: float) -> PoolEvent:
        task_id = worker.task_id
        elapsed = now - worker.started_at
        self._discard(worker, kill=True)
        return PoolEvent(kind="timeout", task_id=task_id, elapsed=elapsed)

    # -------------------------------------------------------------- lifecycle
    def terminate(self) -> None:
        """SIGTERM every worker (idempotent; ``join`` completes the reap)."""
        self._terminated = True
        for worker in self._workers:
            try:
                worker.process.terminate()
            except Exception:
                pass

    def join(self) -> None:
        """Reap every worker process and close its pipe (idempotent)."""
        while self._workers:
            self._discard(self._workers[-1])

    def __len__(self) -> int:
        return len(self._workers)

    def __repr__(self) -> str:
        busy = sum(1 for worker in self._workers if worker.busy)
        return (
            f"FaultTolerantPool(workers={len(self._workers)}/{self._processes}, "
            f"busy={busy}, queued={len(self._queue)})"
        )


__all__ = ["FaultTolerantPool", "PoolEvent"]
