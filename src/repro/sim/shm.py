"""Zero-copy shared-memory trace transport for the sweep pool.

When a :class:`~repro.sim.runner.SweepRunner` fans jobs out over a
``multiprocessing`` pool, every job used to carry its trace across the
process boundary the expensive way: inline traces were pickled per job
(~17 bytes/instruction serialised, copied, deserialised), and spec-form
traces were re-materialised (or re-read from the on-disk trace cache) once
per worker.  This module replaces both with one POSIX shared-memory
segment per distinct trace:

* the parent writes the trace's three flat columns — ``pc`` (``Q``),
  ``data_address`` (``Q``), ``flags`` (``B``) — back to back into a single
  :class:`multiprocessing.shared_memory.SharedMemory` segment
  (:func:`SegmentRegistry.publish`);
* jobs ship a tiny picklable :class:`SharedTraceRef` naming the segment;
* workers attach and rebuild the trace with
  :meth:`~repro.workloads.trace.Trace.from_columns` over zero-copy
  memoryviews into the mapping (:func:`attach_trace`) — no bytes are
  copied, no trace is re-generated, and repeated jobs against the same
  trace reuse the worker's attachment via a small per-process memo.

Lifecycle: the parent's :class:`SegmentRegistry` owns every segment it
created and unlinks them on eviction (LRU, so a long-lived runner cannot
accumulate unbounded ``/dev/shm`` space) and on
:meth:`~SegmentRegistry.release_all` (called by ``SweepRunner.close()``
and by a ``weakref.finalize`` backstop at interpreter exit).  Workers
deliberately leave the resource tracker alone when attaching: they do not
own the segment, pool workers share the parent's tracker process (whose
registration set already carries the name from publish time), and a
worker-side unregister would strip that entry out from under the
parent's eventual unlink.

Every path degrades gracefully: platforms without
``multiprocessing.shared_memory``, publish failures (e.g. ``/dev/shm``
full), and attach failures (segment evicted while the job was queued) all
fall back to the classic pickle/re-materialise transport, bit-identically.
A :class:`SharedTraceRef` carries the original spec as ``fallback`` for
exactly that purpose.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.counters import CounterRegistry
from repro.sim import faults
from repro.workloads.trace import Trace

try:  # pragma: no cover - import always succeeds on supported platforms
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shared_memory = None
    HAVE_SHM = False

#: Segment-name prefix; leak checks look for stale ``/dev/shm`` entries
#: carrying it (the pid of the publishing process is baked in after it).
SEGMENT_PREFIX = "repro"

#: Bytes per trace row in a published segment (8 pc + 8 address + 1 flag).
ROW_BYTES = 17

#: Per-process transport counters (see :func:`stats_snapshot`).
_STATS = CounterRegistry({
    "shm_published": 0,
    "shm_attached": 0,
    "shm_attach_reuses": 0,
    "shm_attach_failures": 0,
    "shm_publish_failures": 0,
    "shm_unlinked": 0,
})


def stats_snapshot() -> Dict[str, int]:
    """Copy of this process's transport counters."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero this process's transport counters (test isolation)."""
    for key in _STATS:
        _STATS[key] = 0


def shm_available() -> bool:
    """True when the shared-memory transport can be used in this process."""
    return HAVE_SHM and _shared_memory is not None


@dataclass(frozen=True)
class SharedTraceRef:
    """Picklable pointer to a trace published in a shared-memory segment.

    Jobs dispatched to the pool carry this instead of the trace itself;
    ``resolve_trace`` in the worker attaches the segment and rebuilds the
    trace zero-copy.  ``fallback`` holds the original spec-form trace
    (:class:`~repro.sim.runner.TraceSpec` /
    :class:`~repro.workloads.ingest.ExternalTraceSpec`, or None for inline
    traces) so a worker that cannot attach — the segment was evicted, or
    the platform lost shared memory between publish and attach — can
    re-resolve the classic way instead of failing the job.
    """

    segment: str
    name: str
    n: int
    memory_level_parallelism: float = 1.0
    fallback: object = None


def _segment_layout(n: int) -> Tuple[int, int, int]:
    """Byte offsets of the (address, flags, end) boundaries for ``n`` rows."""
    return 8 * n, 16 * n, ROW_BYTES * n


def attach_trace(ref: SharedTraceRef) -> Optional[Trace]:
    """Attach ``ref``'s segment and rebuild its trace zero-copy.

    Returns None when the transport is unavailable or the attach fails for
    any reason (counted in ``shm_attach_failures``); the caller falls back
    to ``ref.fallback``.  Successful attachments are memoised per process
    (keyed by segment name, small LRU), so a sweep running hundreds of
    jobs against one trace maps it once per worker.
    """
    if not shm_available():
        _STATS["shm_attach_failures"] += 1
        return None
    if faults.fire("shm_attach_fail") is not None:
        # Injected attach failure: exactly the segment-evicted path — the
        # caller re-resolves from ``ref.fallback``, bit-identically.
        _STATS["shm_attach_failures"] += 1
        return None
    entry = _ATTACH_MEMO.pop(ref.segment, None)
    if entry is not None:
        _ATTACH_MEMO[ref.segment] = entry  # re-insert: most recently used
        _STATS["shm_attach_reuses"] += 1
        return entry[1]
    try:
        segment = _shared_memory.SharedMemory(name=ref.segment)
    except Exception:
        _STATS["shm_attach_failures"] += 1
        return None
    # No resource-tracker bookkeeping here: pool workers (fork and spawn
    # alike) share the parent's tracker process, whose registration set
    # already carries this name from publish time — attaching merely
    # re-adds the same entry, and the parent's unlink() removes it exactly
    # once.  A worker-side unregister would strip the parent's entry and
    # make that unlink trip a KeyError inside the tracker.
    addr_off, flag_off, end = _segment_layout(ref.n)
    view = memoryview(segment.buf)
    trace = Trace.from_columns(
        name=ref.name,
        pcs=view[0:addr_off].cast("Q"),
        addresses=view[addr_off:flag_off].cast("Q"),
        flags=view[flag_off:end],
        memory_level_parallelism=ref.memory_level_parallelism,
    )
    _STATS["shm_attached"] += 1
    _ATTACH_MEMO[ref.segment] = (segment, trace)
    while len(_ATTACH_MEMO) > _ATTACH_MEMO_MAX:
        old_segment, old_trace = _ATTACH_MEMO.pop(next(iter(_ATTACH_MEMO)))
        del old_trace
        try:
            old_segment.close()
        except BufferError:
            # The evicted trace's memoryviews are still exported somewhere;
            # leave the mapping open — process exit reclaims it.
            pass
    return trace


#: Per-worker attachment memo: segment name -> (SharedMemory, Trace).
#: Plain dict used as an LRU via pop/re-insert, like the runner's trace memo.
_ATTACH_MEMO: Dict[str, Tuple[object, Trace]] = {}
_ATTACH_MEMO_MAX = 16


def _release_attachments() -> None:
    """Drop every memoised attachment (test isolation)."""
    while _ATTACH_MEMO:
        _, (segment, trace) = _ATTACH_MEMO.popitem()
        del trace
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views still exported
            pass


class SegmentRegistry:
    """The parent-side table of published segments, with refcounted reuse.

    One registry per :class:`~repro.sim.runner.SweepRunner`.  Segments are
    keyed by the same identity ``resolve_trace`` uses (spec fields, or
    content digest for inline traces), so every job of a sweep that names
    the same trace shares one segment.  Capacity-bounded: publishing the
    ``capacity+1``-th distinct trace unlinks the least recently used
    segment — in-flight jobs still holding its ref attach-fail and fall
    back to their spec, so eviction is always safe, just slower.

    Attributes:
        published: distinct segments ever published by this registry.
    """

    def __init__(self, capacity: int = 16) -> None:
        self.capacity = capacity
        self.published = 0
        self._segments: Dict[object, Tuple[SharedTraceRef, object]] = {}
        self._sequence = 0

    def lookup(self, key) -> Optional[SharedTraceRef]:
        """The live ref for ``key``, or None; refreshes LRU order."""
        entry = self._segments.pop(key, None)
        if entry is None:
            return None
        self._segments[key] = entry
        return entry[0]

    def publish(self, key, trace: Trace, fallback=None) -> Optional[SharedTraceRef]:
        """Copy ``trace``'s columns into a fresh segment and return its ref.

        Returns None when shared memory is unavailable or segment creation
        fails (counted in ``shm_publish_failures``); the caller ships the
        trace the classic way.
        """
        if not shm_available():
            return None
        if faults.fire("shm_publish_fail") is not None:
            # Injected publish failure (/dev/shm full, say): the caller
            # ships the trace the classic pickled way, bit-identically.
            _STATS["shm_publish_failures"] += 1
            return None
        existing = self.lookup(key)
        if existing is not None:
            return existing
        n = len(trace)
        name = (
            f"{SEGMENT_PREFIX}_{os.getpid()}_{self._sequence}_"
            f"{secrets.token_hex(4)}"
        )
        try:
            segment = _shared_memory.SharedMemory(
                name=name, create=True, size=max(1, ROW_BYTES * n)
            )
        except Exception:
            _STATS["shm_publish_failures"] += 1
            return None
        self._sequence += 1
        addr_off, flag_off, end = _segment_layout(n)
        pc_bytes, addr_bytes, flag_bytes = trace.column_bytes()
        buf = segment.buf
        buf[0:addr_off] = pc_bytes
        buf[addr_off:flag_off] = addr_bytes
        buf[flag_off:end] = flag_bytes
        ref = SharedTraceRef(
            segment=segment.name,
            name=trace.name,
            n=n,
            memory_level_parallelism=trace.memory_level_parallelism,
            fallback=fallback,
        )
        self._segments[key] = (ref, segment)
        self.published += 1
        _STATS["shm_published"] += 1
        while len(self._segments) > self.capacity:
            stale_key = next(iter(self._segments))
            _, stale_segment = self._segments.pop(stale_key)
            _destroy(stale_segment)
        return ref

    def release_all(self) -> None:
        """Close and unlink every live segment (idempotent).

        Safe when re-entered concurrently: the ``weakref.finalize``
        backstop can fire this at interpreter exit while an explicit
        ``SweepRunner.close()`` is mid-release, so each iteration *pops*
        atomically and tolerates losing the race for the final entry
        instead of check-then-popping (which would raise KeyError).
        """
        while True:
            try:
                _, (_, segment) = self._segments.popitem()
            except KeyError:
                return
            _destroy(segment)

    def __len__(self) -> int:
        return len(self._segments)


def _destroy(segment) -> None:
    """Close and unlink a segment this process created."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - parent holds no exported views
        pass
    try:
        segment.unlink()
        _STATS["shm_unlinked"] += 1
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    except Exception:  # pragma: no cover - platform quirks
        pass
