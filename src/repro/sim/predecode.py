"""Configuration-invariant trace pre-decode, memoized per trace.

``decode_interval`` re-derives, for every interval of every run, work that
does not depend on the cache configuration at all: fetch-block-change
detection, branch resolution against a fresh bimodal predictor, and the
extraction of the memory-op stream.  A profiling sweep replays the same
trace dozens of times, so this module computes that invariant phase **once
per (trace, block mask)** into flat buffers and lets every subsequent run
slice its intervals out of the precomputed stream:

* :class:`DecodedTrace` — the whole-trace cache-op stream (the exact
  concatenation of per-interval ``decode_interval`` outputs) plus per-row
  prefix arrays for the branch/mispredict/memory-ref/store totals, so any
  row range ``[start, stop)`` yields its interval ops and totals in O(1)
  slicing.  Built vectorized when NumPy is importable (see
  :mod:`repro.sim.vector`), with a bit-identical stdlib builder otherwise.
* :class:`PilotResolution` — the fused-ladder pilot pre-screen: a fixed
  (non-resizable) L1's hit/miss sequence over the shared op stream depends
  only on its own geometry, so the pilot-reduced stream of
  :mod:`repro.sim.ladder` is itself trace-invariant and is memoized per
  (trace, side, pilot geometry).

Both memos key off live :class:`~repro.workloads.trace.Trace` objects
(weakly, so traces die normally); :class:`DecodedTrace` additionally
round-trips through the on-disk trace memo
(:meth:`repro.sim.tracecache.TraceCache.put_decoded`) keyed by (trace
digest, block mask, decode version), so worker processes share decodes
across runs and pool restarts.

Correctness argument, pinned by ``tests/sim/test_predecode.py`` and the
property suite: whole-trace decode with the initial ``last_fetch_block =
-1`` equals the concatenation of per-interval decodes because the decode
threads exactly that one integer across interval boundaries; branch
resolution on a *replica* fresh predictor is bit-identical because every
run constructs a fresh default predictor and nothing reads the predictor
object's own counters after replay.  :func:`decoded_for` therefore gates
on the run's predictor being a fresh default
:class:`~repro.cpu.branch.BimodalBranchPredictor` and refuses (returns
None, callers fall back to the scalar path) for anything else.

Op codes (shared layout with :mod:`repro.sim.engine` /
:mod:`repro.sim.ladder`, which keep their private aliases)::

    0  fetch   operand = pc
    1  load    operand = data address
    2  store   operand = data address
    3  i-miss  operand = pc                     (pilot-reduced streams only)
    4  d-miss  operands = address, l1_packed    (pilot-reduced streams only)
"""

from __future__ import annotations

import struct
import weakref
from array import array
from typing import Dict, List, Optional

from repro.cache.cache import PACKED_WRITEBACK_VALID, Cache
from repro.common.counters import CounterRegistry
from repro.cpu.branch import BimodalBranchPredictor
from repro.sim.vector import numpy_or_none
from repro.workloads.trace import FLAG_BRANCH, FLAG_MEM, FLAG_STORE, FLAG_TAKEN, Trace

OP_FETCH = 0
OP_LOAD = 1
OP_STORE = 2
OP_IMISS = 3
OP_DMISS = 4

#: Bumped whenever the decoded layout or semantics change; part of the
#: on-disk memo key, so stale entries are simply never found.
DECODE_VERSION = 1

#: The decode applies only to runs driven by the default predictor build
#: (``Simulator._prepare_run`` always constructs this); anything else fails
#: the :func:`decoded_for` gate and replays scalar.
_PREDICTOR_TABLE = 4096

#: Row-count ceilings: the prefix arrays are 32-bit ('I'), and the cached
#: boxed-int views trade memory for slice speed only while they stay small.
MAX_ROWS = 1 << 30
_OPS_LIST_MAX_ROWS = 4_000_000
PILOT_MEMO_MAX_ROWS = 4_000_000

_STATS = CounterRegistry({
    "decode_builds": 0,
    "decode_memo_hits": 0,
    "decode_disk_hits": 0,
    "pilot_builds": 0,
    "pilot_memo_hits": 0,
})

_DECODE_MEMO: "weakref.WeakKeyDictionary[Trace, Dict[int, DecodedTrace]]" = (
    weakref.WeakKeyDictionary()
)
_PILOT_MEMO: "weakref.WeakKeyDictionary[Trace, Dict[tuple, PilotResolution]]" = (
    weakref.WeakKeyDictionary()
)

_HEADER = struct.Struct("<4sHqQQ")
_MAGIC = b"RDEC"


def stats_snapshot() -> Dict[str, int]:
    """A copy of the module's memo counters (merged across workers by the runner)."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the memo counters (tests only)."""
    for key in _STATS:
        _STATS[key] = 0


class DecodedTrace:
    """The whole-trace decode of one (trace, block mask) pair.

    ``stream`` is the flat interleaved ``code, operand`` cache-op stream —
    byte-for-byte what concatenating ``decode_interval`` over any interval
    partition produces — and the five prefix arrays (length ``n + 1``) give
    every per-row running total, so interval ``[start, stop)`` slices as::

        ops      = decoded.interval_ops(start, stop)
        branches = decoded.branch_prefix[stop] - decoded.branch_prefix[start]

    ``op_prefix`` counts op *pairs* (half the flat stream offset).
    """

    __slots__ = (
        "n",
        "block_mask",
        "stream",
        "op_prefix",
        "branch_prefix",
        "mispredict_prefix",
        "memref_prefix",
        "store_prefix",
        "_ops_list",
        "_stream_view",
    )

    def __init__(self, n, block_mask, stream, op_prefix, branch_prefix,
                 mispredict_prefix, memref_prefix, store_prefix):
        self.n = n
        self.block_mask = block_mask
        self.stream = stream
        self.op_prefix = op_prefix
        self.branch_prefix = branch_prefix
        self.mispredict_prefix = mispredict_prefix
        self.memref_prefix = memref_prefix
        self.store_prefix = store_prefix
        self._ops_list: Optional[List[int]] = None
        self._stream_view = None

    def interval_ops(self, start: int, stop: int) -> List[int]:
        """The flat op list for rows ``[start, stop)`` (a fresh, mutable list)."""
        ops_list = self._ops_list
        if ops_list is None:
            if self.n <= _OPS_LIST_MAX_ROWS:
                # Box the stream once; interval slices are then C-level
                # pointer copies instead of per-element int boxing.
                self._ops_list = ops_list = self.stream.tolist()
            else:
                view = self._stream_view
                if view is None:
                    self._stream_view = view = memoryview(self.stream)
                return view[2 * self.op_prefix[start]:2 * self.op_prefix[stop]].tolist()
        return ops_list[2 * self.op_prefix[start]:2 * self.op_prefix[stop]]

    def to_bytes(self) -> bytes:
        """Serialize for the on-disk trace memo (native byte order)."""
        parts = [
            _HEADER.pack(_MAGIC, DECODE_VERSION, self.block_mask, self.n, len(self.stream)),
            self.stream.tobytes(),
        ]
        for prefix in (self.op_prefix, self.branch_prefix, self.mispredict_prefix,
                       self.memref_prefix, self.store_prefix):
            parts.append(prefix.tobytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DecodedTrace":
        if len(data) < _HEADER.size:
            raise ValueError("truncated decoded-trace payload")
        magic, version, block_mask, n, stream_len = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC or version != DECODE_VERSION:
            raise ValueError("not a decoded-trace payload of the current version")
        offset = _HEADER.size
        stream = array("Q")
        stream.frombytes(data[offset:offset + 8 * stream_len])
        offset += 8 * stream_len
        prefixes = []
        span = 4 * (n + 1)
        for _ in range(5):
            prefix = array("I")
            prefix.frombytes(data[offset:offset + span])
            offset += span
            prefixes.append(prefix)
        if len(stream) != stream_len or any(len(p) != n + 1 for p in prefixes):
            raise ValueError("truncated decoded-trace payload")
        return cls(n, block_mask, stream, *prefixes)


class PilotResolution:
    """A fused ladder's pilot-reduced stream, precomputed for a whole trace.

    ``entries`` is the flat reduced stream exactly as
    ``repro.sim.ladder._resolve_pilot_i/_resolve_pilot_d`` would emit it
    over the whole trace (variable arity: d-miss ops carry the pilot's
    packed outcome as a third entry, which is why ``entry_prefix`` counts
    flat *entries*, not pairs).  ``miss_prefix`` carries the shared
    per-row running miss total (i-misses for side "i", d-misses for side
    "d"); ``wb_prefix`` the shared d-writeback total (side "d" only).
    """

    __slots__ = ("side", "entries", "entry_prefix", "miss_prefix", "wb_prefix")

    def __init__(self, side, entries, entry_prefix, miss_prefix, wb_prefix):
        self.side = side
        self.entries = entries
        self.entry_prefix = entry_prefix
        self.miss_prefix = miss_prefix
        self.wb_prefix = wb_prefix

    def interval_entries(self, start: int, stop: int) -> List[int]:
        """The flat reduced-op list for rows ``[start, stop)``."""
        return self.entries[self.entry_prefix[start]:self.entry_prefix[stop]]


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def build_decoded(trace: Trace, block_mask: int) -> Optional[DecodedTrace]:
    """Decode a whole trace; None when it falls outside the supported gates."""
    n = len(trace)
    if n == 0 or n >= MAX_ROWS:
        return None
    _STATS["decode_builds"] += 1
    np = numpy_or_none()
    if np is not None:
        return _build_numpy(trace, block_mask, np)
    return _build_scalar(trace, block_mask)


def _build_scalar(trace: Trace, block_mask: int) -> DecodedTrace:
    """One whole-trace pass mirroring ``decode_interval`` row for row."""
    pc_column, address_column, flag_column = trace.columns()
    pcs = memoryview(pc_column).tolist()
    flags = memoryview(flag_column).tolist()
    addresses = memoryview(address_column).tolist()
    n = len(pcs)

    stream = array("Q")
    append = stream.append
    zeros = bytes(4 * (n + 1))
    op_prefix = array("I", zeros)
    branch_prefix = array("I", zeros)
    mispredict_prefix = array("I", zeros)
    memref_prefix = array("I", zeros)
    store_prefix = array("I", zeros)

    # Inline replica of a fresh default BimodalBranchPredictor: identical
    # indexing, 2-bit saturating update and mispredict rule.
    counters = [BimodalBranchPredictor.WEAK_TAKEN] * _PREDICTOR_TABLE
    pmask = _PREDICTOR_TABLE - 1

    branch_flag, mem_flag = FLAG_BRANCH, FLAG_MEM
    store_flag, taken_flag = FLAG_STORE, FLAG_TAKEN
    op_fetch, op_load, op_store = OP_FETCH, OP_LOAD, OP_STORE
    last_fetch_block = -1
    op_count = 0
    branches = 0
    mispredicts = 0
    memory_refs = 0
    stores = 0
    for k in range(n):
        pc = pcs[k]
        fetch_block = pc & block_mask
        if fetch_block != last_fetch_block:
            last_fetch_block = fetch_block
            append(op_fetch)
            append(pc)
            op_count += 1
        flag = flags[k]
        if flag:
            if flag & branch_flag:
                branches += 1
                index = (pc >> 2) & pmask
                counter = counters[index]
                taken = bool(flag & taken_flag)
                if (counter >= 2) != taken:
                    mispredicts += 1
                if taken:
                    if counter < 3:
                        counters[index] = counter + 1
                elif counter > 0:
                    counters[index] = counter - 1
            if flag & mem_flag:
                if flag & store_flag:
                    stores += 1
                    append(op_store)
                else:
                    append(op_load)
                memory_refs += 1
                append(addresses[k])
                op_count += 1
        j = k + 1
        op_prefix[j] = op_count
        branch_prefix[j] = branches
        mispredict_prefix[j] = mispredicts
        memref_prefix[j] = memory_refs
        store_prefix[j] = stores

    return DecodedTrace(n, block_mask, stream, op_prefix, branch_prefix,
                        mispredict_prefix, memref_prefix, store_prefix)


def _build_numpy(trace: Trace, block_mask: int, np) -> DecodedTrace:
    """Vectorized builder: everything but the (sequential) predictor replica."""
    pc_column, address_column, flag_column = trace.columns()
    pc = np.frombuffer(pc_column, dtype=np.uint64)
    addresses = np.frombuffer(address_column, dtype=np.uint64)
    flags = np.frombuffer(flag_column, dtype=np.uint8)
    n = len(pc)

    mask64 = np.uint64(block_mask & 0xFFFFFFFFFFFFFFFF)
    blocks = pc & mask64
    fetch = np.empty(n, dtype=bool)
    fetch[0] = True  # initial last_fetch_block is -1, never a real block
    np.not_equal(blocks[1:], blocks[:-1], out=fetch[1:])

    mem = (flags & FLAG_MEM) != 0
    store = mem & ((flags & FLAG_STORE) != 0)
    branch = (flags & FLAG_BRANCH) != 0

    pairs = fetch.astype(np.uint32)
    pairs += mem
    op_prefix_np = np.zeros(n + 1, dtype=np.uint32)
    np.cumsum(pairs, out=op_prefix_np[1:])

    stream_np = np.empty(2 * int(op_prefix_np[n]), dtype=np.uint64)
    base = op_prefix_np[:n].astype(np.int64) * 2
    fetch_at = base[fetch]
    stream_np[fetch_at] = OP_FETCH
    stream_np[fetch_at + 1] = pc[fetch]
    mem_at = (base + 2 * fetch)[mem]
    stream_np[mem_at] = np.where(store[mem], OP_STORE, OP_LOAD)
    stream_np[mem_at + 1] = addresses[mem]

    def running(mask_arr):
        out = np.zeros(n + 1, dtype=np.uint32)
        np.cumsum(mask_arr, out=out[1:])
        return array("I", out.tobytes())

    # Branch resolution is inherently sequential (the table is stateful);
    # run the predictor replica over just the branch rows.
    mispredict_np = np.zeros(n, dtype=np.uint32)
    branch_rows = np.flatnonzero(branch)
    if len(branch_rows):
        counters = [BimodalBranchPredictor.WEAK_TAKEN] * _PREDICTOR_TABLE
        pmask = _PREDICTOR_TABLE - 1
        taken_list = ((flags[branch_rows] & FLAG_TAKEN) != 0).tolist()
        index_list = ((pc[branch_rows] >> np.uint64(2)) & np.uint64(pmask)).tolist()
        mis_list = []
        mis_append = mis_list.append
        for index, taken in zip(index_list, taken_list):
            counter = counters[index]
            mis_append(1 if (counter >= 2) != taken else 0)
            if taken:
                if counter < 3:
                    counters[index] = counter + 1
            elif counter > 0:
                counters[index] = counter - 1
        mispredict_np[branch_rows] = mis_list

    stream = array("Q")
    stream.frombytes(stream_np.tobytes())
    return DecodedTrace(
        n,
        block_mask,
        stream,
        array("I", op_prefix_np.tobytes()),
        running(branch),
        running(mispredict_np),
        running(mem),
        running(store),
    )


def build_pilot(decoded: DecodedTrace, side: str, geometry, replacement, name: str) -> PilotResolution:
    """Resolve the invariant L1 side over the whole decoded stream.

    Drives a throwaway fixed cache with the pilot's exact geometry,
    replacement policy and name (the name seeds RANDOM victim selection),
    which by construction behaves identically to the live pilot a fused
    replay would otherwise drive interval by interval.
    """
    _STATS["pilot_builds"] += 1
    pilot = Cache(geometry, replacement, name=name)
    kernel = pilot.access_packed
    n = decoded.n
    op_prefix = decoded.op_prefix
    stream = decoded.interval_ops(0, n)

    entries: List[int] = []
    append = entries.append
    zeros = bytes(4 * (n + 1))
    entry_prefix = array("I", zeros)
    miss_prefix = array("I", zeros)
    wb_prefix = array("I", zeros) if side == "d" else None

    misses = 0
    writebacks = 0
    position = 0
    if side == "i":
        for k in range(n):
            stop = 2 * op_prefix[k + 1]
            while position < stop:
                code = stream[position]
                operand = stream[position + 1]
                position += 2
                if code == OP_FETCH:
                    if not kernel(operand, False) & 1:
                        misses += 1
                        append(OP_IMISS)
                        append(operand)
                else:
                    append(code)
                    append(operand)
            entry_prefix[k + 1] = len(entries)
            miss_prefix[k + 1] = misses
    else:
        for k in range(n):
            stop = 2 * op_prefix[k + 1]
            while position < stop:
                code = stream[position]
                operand = stream[position + 1]
                position += 2
                if code == OP_FETCH:
                    append(OP_FETCH)
                    append(operand)
                else:
                    l1_packed = kernel(operand, code != OP_LOAD)
                    if not l1_packed & 1:
                        misses += 1
                        if l1_packed & PACKED_WRITEBACK_VALID:
                            writebacks += 1
                        append(OP_DMISS)
                        append(operand)
                        append(l1_packed)
            entry_prefix[k + 1] = len(entries)
            miss_prefix[k + 1] = misses
            wb_prefix[k + 1] = writebacks

    return PilotResolution(side, entries, entry_prefix, miss_prefix, wb_prefix)


# ---------------------------------------------------------------------------
# Memoized entry points
# ---------------------------------------------------------------------------


def _predictor_is_default(predictor) -> bool:
    return (
        type(predictor) is BimodalBranchPredictor
        and predictor.table_entries == _PREDICTOR_TABLE
        and predictor.predictions == 0
    )


def decoded_for(trace: Trace, block_mask: int, predictor) -> Optional[DecodedTrace]:
    """The memoized decode for a run, or None when the run must stay scalar.

    Gates: the run's predictor must be a fresh default bimodal predictor
    (the precomputed mispredict totals were produced by exactly that
    machine) and the trace must fit the 32-bit prefix layout.  Checks the
    in-memory weak memo, then the on-disk trace memo, then builds.
    """
    n = len(trace)
    if n == 0 or n >= MAX_ROWS or not _predictor_is_default(predictor):
        return None
    per_trace = _DECODE_MEMO.get(trace)
    if per_trace is not None:
        decoded = per_trace.get(block_mask)
        if decoded is not None:
            _STATS["decode_memo_hits"] += 1
            return decoded
    decoded = _load_from_disk(trace, block_mask)
    if decoded is None:
        decoded = build_decoded(trace, block_mask)
        if decoded is None:
            return None
        _store_to_disk(trace, block_mask, decoded)
    if per_trace is None:
        per_trace = {}
        try:
            _DECODE_MEMO[trace] = per_trace
        except TypeError:  # unweakrefable trace stand-ins (tests)
            return decoded
    per_trace[block_mask] = decoded
    return decoded


def pilot_for(trace: Trace, decoded: DecodedTrace, side: str, cache) -> Optional[PilotResolution]:
    """The memoized pilot pre-screen, or None when the pilot is unsupported.

    ``cache`` is the live pilot (rung 0's fixed L1).  It must be exactly a
    fresh :class:`~repro.cache.cache.Cache` — the memoized resolution is
    only valid from a cold pilot, and any subclass could change the access
    semantics.  On a memo hit the live pilot is never driven at all, which
    extends the documented fused-ladder caveat (idle invariant-side caches)
    to rung 0.
    """
    if type(cache) is not Cache or cache.stats.accesses != 0:
        return None
    if decoded.n > PILOT_MEMO_MAX_ROWS:
        return None
    key = (side, decoded.block_mask, cache.geometry, cache.replacement, cache.name)
    per_trace = _PILOT_MEMO.get(trace)
    if per_trace is not None:
        pilot = per_trace.get(key)
        if pilot is not None:
            _STATS["pilot_memo_hits"] += 1
            return pilot
    pilot = build_pilot(decoded, side, cache.geometry, cache.replacement, cache.name)
    if per_trace is None:
        per_trace = {}
        try:
            _PILOT_MEMO[trace] = per_trace
        except TypeError:
            return pilot
    per_trace[key] = pilot
    return pilot


def _load_from_disk(trace: Trace, block_mask: int) -> Optional[DecodedTrace]:
    # The trace cache verifies a checksum around every ``.decode`` entry
    # and self-heals corrupt ones into misses; the blanket except below is
    # the last-resort guard (a checksum-valid payload from a buggy writer),
    # and a miss here simply rebuilds the decode.
    try:
        from repro.sim.runner import _trace_digest, get_trace_cache

        cache = get_trace_cache()
        if cache is None:
            return None
        data = cache.get_decoded(_trace_digest(trace), block_mask)
        if data is None:
            return None
        decoded = DecodedTrace.from_bytes(data)
        if decoded.n != len(trace) or decoded.block_mask != block_mask:
            return None
        _STATS["decode_disk_hits"] += 1
        return decoded
    except Exception:
        return None


def _store_to_disk(trace: Trace, block_mask: int, decoded: DecodedTrace) -> None:
    try:
        from repro.sim.runner import _trace_digest, get_trace_cache

        cache = get_trace_cache()
        if cache is not None:
            cache.put_decoded(_trace_digest(trace), block_mask, decoded.to_bytes())
    except Exception:
        pass
