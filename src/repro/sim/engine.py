"""Pluggable replay engines: the simulator's per-instruction hot loop.

:class:`repro.sim.simulator.Simulator` is split into a thin orchestration
shell (build the caches, hierarchy, timing and energy models; aggregate the
final result) and a *replay engine* that owns the only per-instruction code
in the project.  Engines are interchangeable and must be **bit-identical**:
for any trace and setup, every engine produces exactly the same
:class:`~repro.sim.results.SimulationResult` (``to_dict()`` equality is
enforced by the cross-engine equivalence suite in
``tests/sim/test_engines.py`` and ``tests/properties/test_property_engines.py``).

Two engines ship:

* :class:`ReferenceEngine` — the historical per-record loop: iterate the
  trace's row view, unpack one :class:`InstructionRecord` per instruction.
  Kept as the executable specification the fast path is checked against.
* :class:`ColumnarEngine` (the default) — replays straight from the trace's
  structure-of-arrays columns.  Each interval is pre-decoded *once* into a
  flat cache-operation stream (fetch-block-change detection, memory-op
  extraction with the store bit resolved), so the execute loop touches only
  instructions that actually reach the caches and never materialises a
  record object.  Branches are resolved *during* the decode — the branch
  predictor shares no state with the caches, so predicting while decoding
  is bit-identical to predicting in program-order between cache events —
  which keeps branch events out of the dispatch stream entirely.
  Instructions with no event (no new fetch block, no branch, no memory
  reference — typically around half the stream) cost one flag test instead
  of a full loop body.  The dispatch loop drives the hierarchy through its
  allocation-free packed kernel (``data_access_packed`` /
  ``instruction_fetch_packed``, see :mod:`repro.cache.hierarchy`) and
  decodes the packed outcome ints with bit ops, so a replayed memory access
  allocates nothing end to end; the reference engine keeps exercising the
  object-returning wrapper path.

The decode and dispatch passes are exposed as module-level helpers
(:func:`decode_interval`, :func:`dispatch_cache_ops`) because the fused
multi-configuration ladder engine (:mod:`repro.sim.ladder`) reuses them:
one decode pass feeds K per-configuration dispatch loops, which is exactly
why the cache-only op stream exists as a separate artifact.

Engine selection: ``Simulator(engine=...)`` / ``Simulator.run(engine=...)``
accept an engine name or instance; :class:`~repro.sim.runner.SimJob` carries
the name so sweeps replay with the engine the caller chose (CLI:
``--engine {reference,columnar}``).  Custom engines register with
:func:`register_engine`.

Interval semantics live in :class:`ReplayContext.close_interval`, shared by
every engine, so timing/energy aggregation, warmup accounting and resizing
decisions cannot drift between implementations — an engine only decides how
to walk the trace and feed the caches/predictor in program order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type, Union

from repro.cache.hierarchy import (
    HIER_COUNT_MASK,
    HIER_L2_ACCESSES_SHIFT,
    HIER_MEM_ACCESSES_SHIFT,
)
from repro.common.errors import SimulationError
from repro.metrics.counts import IntervalCounts
from repro.workloads.trace import (
    FLAG_BRANCH,
    FLAG_MEM,
    FLAG_STORE,
    FLAG_TAKEN,
    Trace,
)

#: Operation codes of the decoded per-interval cache-op stream.  The stream
#: is a flat list alternating ``code, operand``: the operand is the fetch PC
#: or the data address.  Branches never enter the stream — they are resolved
#: during the decode pass (see :func:`decode_interval`).
_OP_FETCH = 0
_OP_LOAD = 1
_OP_STORE = 2


def sampling_plan(n, interval_instructions, sample_every, sample_warmup):
    """The segment schedule for interval sampling, or None when not sampling.

    With ``sample_every`` > 1 only every Nth interval of the trace is
    simulated (interval 0, N, 2N, …), each optionally preceded by a warmup
    prefix of up to ``sample_warmup`` instructions replayed to re-warm cache
    and predictor state but excluded from all statistics — the SimPoint-style
    scheme documented in ``docs/SAMPLING.md``.  Returns a list of
    ``(start, stop, measured)`` row ranges in replay order; unmentioned rows
    are skipped entirely.  Warmup ranges are pre-split into chunks of at most
    ``interval_instructions`` rows so engines that decode a segment at a
    time keep their bounded-memory property.

    When ``sample_every`` is 1 the answer is None and engines take their
    exhaustive path untouched.
    """
    if sample_every <= 1:
        return None
    segments = []
    prev_end = 0
    index = 0
    start = 0
    while start < n:
        stop = start + interval_instructions
        if stop > n:
            stop = n
        if index % sample_every == 0:
            warm = max(prev_end, start - sample_warmup)
            while warm < start:
                warm_stop = min(warm + interval_instructions, start)
                segments.append((warm, warm_stop, False))
                warm = warm_stop
            segments.append((start, stop, True))
            prev_end = stop
        start = stop
        index += 1
    return segments


def decode_interval(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict):
    """Decode one interval's columns into a cache-op stream plus totals.

    One linear scan over ``chunk`` unboxed column entries emits, in program
    order, only the events that touch cache state — fetch-block changes and
    memory ops with the store bit resolved — and resolves every branch
    against ``predict`` (a bound ``predict_and_update``) on the spot.
    Folding prediction into the decode is safe because the predictor and
    the caches share no state: per-interval totals are what the interval
    accounting consumes, and those are order-independent between the two
    machines.  Crucially it also means the returned op stream is *pure
    cache work*, so a fused ladder replay can run this decode (and the
    predictor) once and re-dispatch the stream to K cache hierarchies.

    Returns ``(ops, last_fetch_block, branches, branch_mispredicts,
    memory_refs, stores)``; ``last_fetch_block`` threads the fetch-block
    dedup state across interval boundaries.
    """
    ops = []
    append = ops.append
    branches = 0
    branch_mispredicts = 0
    memory_refs = 0
    stores = 0
    branch_flag, mem_flag = FLAG_BRANCH, FLAG_MEM
    store_flag, taken_flag = FLAG_STORE, FLAG_TAKEN
    op_fetch, op_load, op_store = _OP_FETCH, _OP_LOAD, _OP_STORE
    for k in range(chunk):
        pc = pcs[k]
        fetch_block = pc & block_mask
        if fetch_block != last_fetch_block:
            last_fetch_block = fetch_block
            append(op_fetch)
            append(pc)
        flag = flags[k]
        if flag:
            if flag & branch_flag:
                branches += 1
                if predict(pc, True if flag & taken_flag else False):
                    branch_mispredicts += 1
            if flag & mem_flag:
                if flag & store_flag:
                    stores += 1
                    append(op_store)
                else:
                    append(op_load)
                memory_refs += 1
                append(addresses[k])
    return ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores


def dispatch_cache_ops(ops, instruction_fetch, data_access):
    """Drive one hierarchy through a decoded cache-op stream, in order.

    ``instruction_fetch`` / ``data_access`` are the hierarchy's bound packed
    kernels; every outcome is decoded with shift-and-mask ops so the loop
    allocates nothing per access, including on misses.  Returns the interval
    miss statistics as a flat tuple ``(l1i_accesses, l1i_misses,
    l1i_memory, l1d_misses, l1d_memory, l1d_writebacks, l2_accesses,
    memory_accesses)`` — one tuple per interval, accumulated into
    :class:`~repro.metrics.counts.IntervalCounts` by the caller.  The fused
    ladder engine calls this once per configuration per interval on the
    same op stream.
    """
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    op_fetch, op_load = _OP_FETCH, _OP_LOAD
    l1i_accesses = 0
    l1i_misses = 0
    l1i_memory = 0
    l1d_misses = 0
    l1d_memory = 0
    l1d_writebacks = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(ops)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            packed = instruction_fetch(operand)
            l1i_accesses += 1
            if not packed & 1:
                l1i_misses += 1
                l2_accesses += (packed >> l2a_shift) & count_mask
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1i_memory += transfers
        else:
            packed = data_access(operand, code != op_load)
            if not packed & 1:
                l1d_misses += 1
                fills = (packed >> l2a_shift) & count_mask
                l2_accesses += fills
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1d_memory += transfers
                if fills > 1:
                    l1d_writebacks += fills - 1
    return (
        l1i_accesses, l1i_misses, l1i_memory,
        l1d_misses, l1d_memory, l1d_writebacks,
        l2_accesses, memory_accesses,
    )


class ReplayContext:
    """Everything an engine needs to replay one run, plus interval closing.

    Built by the simulator shell per run.  Engines mutate :attr:`counts`
    (the open interval's accumulator), keep :attr:`total_seen` current, and
    call :meth:`close_interval` at every interval boundary; the context owns
    the timing/energy aggregation, warmup bookkeeping and resizing decisions
    so those are identical across engines by construction.
    """

    __slots__ = (
        "hierarchy", "predictor", "core_model", "accountant",
        "d_runtime", "i_runtime", "result",
        "interval_instructions", "warmup_instructions", "block_mask", "mlp",
        "counts", "total_seen", "measured_instructions", "measured_cycles",
        "sample_every", "sample_warmup", "total_intervals", "interval_samples",
    )

    def __init__(
        self,
        hierarchy,
        predictor,
        core_model,
        accountant,
        d_runtime,
        i_runtime,
        result,
        interval_instructions: int,
        warmup_instructions: int,
        block_mask: int,
        memory_level_parallelism: float,
        sample_every: int = 1,
        sample_warmup: int = 0,
    ) -> None:
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.core_model = core_model
        self.accountant = accountant
        self.d_runtime = d_runtime
        self.i_runtime = i_runtime
        self.result = result
        self.interval_instructions = interval_instructions
        self.warmup_instructions = warmup_instructions
        self.block_mask = block_mask
        self.mlp = memory_level_parallelism
        self.counts = IntervalCounts(memory_level_parallelism=memory_level_parallelism)
        self.total_seen = 0
        self.measured_instructions = 0
        self.measured_cycles = 0.0
        self.sample_every = sample_every
        self.sample_warmup = sample_warmup
        self.total_intervals = 0
        #: Per measured interval (sampling only): (l1d_accesses, l1d_misses,
        #: l1i_accesses, l1i_misses) — the raw material of the error bars.
        self.interval_samples = []

    def sampling_plan(self, n: int):
        """The segment schedule for an ``n``-row trace (see :func:`sampling_plan`)."""
        return sampling_plan(
            n, self.interval_instructions, self.sample_every, self.sample_warmup
        )

    def close_interval(self, final: bool = False) -> None:
        """Close the open interval: timing, energy, warmup, resizing.

        Mirrors the pre-split ``Simulator.run`` inner function exactly: a
        non-final close lets each L1's strategy observe the interval and
        charges any resulting flush writebacks to the *next* interval; the
        final close only aggregates.
        """
        counts = self.counts
        if counts.instructions == 0:
            return
        d_runtime, i_runtime, result = self.d_runtime, self.i_runtime, self.result
        cycles = self.core_model.interval_cycles(counts)
        breakdown = self.accountant.interval_breakdown(
            counts,
            cycles,
            l1d_state=d_runtime.subarray_state,
            l1d_ways=d_runtime.enabled_ways,
            l1i_state=i_runtime.subarray_state,
            l1i_ways=i_runtime.enabled_ways,
        )
        in_warmup = self.total_seen <= self.warmup_instructions
        if not in_warmup:
            if self.sample_every > 1:
                self.interval_samples.append((
                    counts.l1d_accesses, counts.l1d_misses,
                    counts.l1i_accesses, counts.l1i_misses,
                ))
            self.measured_instructions += counts.instructions
            self.measured_cycles += cycles
            result.energy.add(breakdown)
            result.l1d_accesses += counts.l1d_accesses
            result.l1d_misses += counts.l1d_misses
            result.l1i_accesses += counts.l1i_accesses
            result.l1i_misses += counts.l1i_misses
            result.l2_accesses += counts.l2_accesses
            result.l2_misses += counts.memory_accesses
            result.branch_mispredicts += counts.branch_mispredicts
            d_runtime.capacity_weight += d_runtime.current_capacity * counts.instructions
            i_runtime.capacity_weight += i_runtime.current_capacity * counts.instructions

        if not final:
            d_flush = d_runtime.observe_interval(
                self.hierarchy, counts.l1d_accesses, counts.l1d_misses
            )
            i_flush = i_runtime.observe_interval(
                self.hierarchy, counts.l1i_accesses, counts.l1i_misses
            )
            counts = IntervalCounts(memory_level_parallelism=self.mlp)
            self.counts = counts
            if d_flush or i_flush:
                counts.resize_flush_writebacks = d_flush + i_flush
                counts.l2_accesses += d_flush + i_flush

    def discard_interval(self) -> None:
        """Drop the open accumulator after replaying a warmup segment.

        Warmup segments of a sampled replay feed the caches and the branch
        predictor (state warms up) but contribute nothing to statistics,
        timing, energy or resizing decisions — they never reach
        :meth:`close_interval`.  The one thing preserved is a resize-flush
        charge carried in from the previous measured interval's close: those
        writebacks are real L2 traffic owed to the *next measured* interval,
        so they survive the discard (see ``docs/SAMPLING.md``).
        """
        carried = self.counts.resize_flush_writebacks
        counts = IntervalCounts(memory_level_parallelism=self.mlp)
        if carried:
            counts.resize_flush_writebacks = carried
            counts.l2_accesses += carried
        self.counts = counts


class ReplayEngine(ABC):
    """Strategy interface for the simulator's per-instruction replay loop."""

    #: Registry name; also what :class:`~repro.sim.runner.SimJob` records.
    name: str = ""

    @abstractmethod
    def replay(self, trace: Trace, ctx: ReplayContext) -> None:
        """Replay ``trace`` through ``ctx``'s hierarchy and predictor.

        Contract: feed every L1i fetch, branch and data access in program
        order, keep ``ctx.counts``/``ctx.total_seen`` current, call
        ``ctx.close_interval()`` after every ``ctx.interval_instructions``
        instructions and ``ctx.close_interval(final=True)`` once at the end.
        """


class ReferenceEngine(ReplayEngine):
    """The historical per-record loop, kept as the executable specification.

    Iterates the trace's row-compatibility view, so it exercises exactly
    the code path (and arithmetic) the project shipped before the columnar
    refactor; the equivalence suite pins :class:`ColumnarEngine` to it.
    """

    name = "reference"

    def replay(self, trace: Trace, ctx: ReplayContext) -> None:
        interval_instructions = ctx.interval_instructions
        block_mask = ctx.block_mask
        data_access = ctx.hierarchy.data_access
        instruction_fetch = ctx.hierarchy.instruction_fetch
        predict = ctx.predictor.predict_and_update

        plan = ctx.sampling_plan(len(trace))
        if plan is not None:
            self._replay_sampled(trace, ctx, plan)
            return

        counts = ctx.counts
        last_fetch_block = -1
        instructions_in_interval = 0
        total_seen = 0

        for record in trace.records:
            pc, data_address, is_store, is_branch, taken = record
            counts.instructions += 1
            total_seen += 1

            fetch_block = pc & block_mask
            if fetch_block != last_fetch_block:
                last_fetch_block = fetch_block
                outcome = instruction_fetch(pc)
                counts.l1i_accesses += 1
                if not outcome.l1_hit:
                    counts.l1i_misses += 1
                    counts.l2_accesses += outcome.l2_accesses
                    counts.memory_accesses += outcome.memory_accesses
                    counts.l1i_memory_accesses += outcome.memory_accesses

            if is_branch:
                counts.branches += 1
                if predict(pc, taken):
                    counts.branch_mispredicts += 1

            if data_address is not None:
                outcome = data_access(data_address, is_store)
                counts.l1d_accesses += 1
                if is_store:
                    counts.l1d_stores += 1
                if not outcome.l1_hit:
                    counts.l1d_misses += 1
                    counts.l2_accesses += outcome.l2_accesses
                    counts.memory_accesses += outcome.memory_accesses
                    counts.l1d_memory_accesses += outcome.memory_accesses
                    if outcome.l2_accesses > 1:
                        counts.l1d_writebacks += outcome.l2_accesses - 1

            instructions_in_interval += 1
            if instructions_in_interval >= interval_instructions:
                ctx.total_seen = total_seen
                ctx.close_interval()
                counts = ctx.counts
                instructions_in_interval = 0

        ctx.total_seen = total_seen
        ctx.close_interval(final=True)

    def _replay_sampled(self, trace: Trace, ctx: ReplayContext, plan) -> None:
        """Walk the sampling plan with the same per-record arithmetic.

        Identical record handling to the exhaustive loop; the only
        differences are segment-driven: the fetch-block dedup state resets
        across a skipped gap (the previous block is unknowable), measured
        segments close their interval, warmup segments are discarded.
        """
        interval_instructions = ctx.interval_instructions
        block_mask = ctx.block_mask
        data_access = ctx.hierarchy.data_access
        instruction_fetch = ctx.hierarchy.instruction_fetch
        predict = ctx.predictor.predict_and_update
        records = trace.records

        last_fetch_block = -1
        total_seen = 0
        prev_stop = 0
        for start, stop, measured in plan:
            if start != prev_stop:
                last_fetch_block = -1
            counts = ctx.counts
            for index in range(start, stop):
                pc, data_address, is_store, is_branch, taken = records[index]
                counts.instructions += 1

                fetch_block = pc & block_mask
                if fetch_block != last_fetch_block:
                    last_fetch_block = fetch_block
                    outcome = instruction_fetch(pc)
                    counts.l1i_accesses += 1
                    if not outcome.l1_hit:
                        counts.l1i_misses += 1
                        counts.l2_accesses += outcome.l2_accesses
                        counts.memory_accesses += outcome.memory_accesses
                        counts.l1i_memory_accesses += outcome.memory_accesses

                if is_branch:
                    counts.branches += 1
                    if predict(pc, taken):
                        counts.branch_mispredicts += 1

                if data_address is not None:
                    outcome = data_access(data_address, is_store)
                    counts.l1d_accesses += 1
                    if is_store:
                        counts.l1d_stores += 1
                    if not outcome.l1_hit:
                        counts.l1d_misses += 1
                        counts.l2_accesses += outcome.l2_accesses
                        counts.memory_accesses += outcome.memory_accesses
                        counts.l1d_memory_accesses += outcome.memory_accesses
                        if outcome.l2_accesses > 1:
                            counts.l1d_writebacks += outcome.l2_accesses - 1

            total_seen += stop - start
            prev_stop = stop
            if not measured:
                ctx.discard_interval()
            elif stop - start == interval_instructions:
                ctx.total_seen = total_seen
                ctx.close_interval()

        ctx.total_seen = total_seen
        ctx.close_interval(final=True)


class ColumnarEngine(ReplayEngine):
    """Replay straight from the trace columns, one decoded interval at a time.

    Per interval the decode pass (:func:`decode_interval`) reads the
    pc/flag/address columns exactly once (``memoryview`` slice → ``tolist``,
    a C-level copy into unboxed list indexing), resolves every branch
    against the predictor, and emits a flat op stream of only the events
    that touch *cache* state, in program order: fetch-block changes and
    memory ops with the store bit pre-resolved.  Pure counting
    (instructions, branch/store/access totals) is summed during the decode,
    so the execute pass (:func:`dispatch_cache_ops`) is a tight dispatch
    over pre-extracted locals with zero per-instruction object churn: cache
    events go through the hierarchy's packed-int kernel and each outcome is
    decoded with shift-and-mask ops, allocating nothing even on misses.
    """

    name = "columnar"

    def replay(self, trace: Trace, ctx: ReplayContext) -> None:
        pc_column, address_column, flag_column = trace.columns()
        pc_view = memoryview(pc_column)
        address_view = memoryview(address_column)
        flag_view = memoryview(flag_column)

        n = len(trace)
        interval_instructions = ctx.interval_instructions
        block_mask = ctx.block_mask
        data_access = ctx.hierarchy.data_access_packed
        instruction_fetch = ctx.hierarchy.instruction_fetch_packed
        predict = ctx.predictor.predict_and_update
        decode = decode_interval
        dispatch = dispatch_cache_ops

        plan = ctx.sampling_plan(n)
        if plan is not None:
            # Sampled walk: the plan dictates which row ranges are replayed;
            # decode/dispatch per segment are identical to the exhaustive
            # path (segments are pre-split to at most one interval), and the
            # fetch-block dedup state resets across skipped gaps.
            last_fetch_block = -1
            total_seen = 0
            prev_stop = 0
            for start, stop, measured in plan:
                if start != prev_stop:
                    last_fetch_block = -1
                chunk = stop - start
                pcs = pc_view[start:stop].tolist()
                flags = flag_view[start:stop].tolist()
                addresses = address_view[start:stop].tolist()

                ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
                    decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
                )

                counts = ctx.counts
                counts.instructions += chunk
                counts.branches += branches
                counts.branch_mispredicts += branch_mispredicts
                counts.l1d_accesses += memory_refs
                counts.l1d_stores += stores
                total_seen += chunk
                prev_stop = stop

                (
                    l1i_accesses, l1i_misses, l1i_memory,
                    l1d_misses, l1d_memory, l1d_writebacks,
                    l2_accesses, memory_accesses,
                ) = dispatch(ops, instruction_fetch, data_access)

                counts.l1i_accesses += l1i_accesses
                counts.l1i_misses += l1i_misses
                counts.l1i_memory_accesses += l1i_memory
                counts.l1d_misses += l1d_misses
                counts.l1d_memory_accesses += l1d_memory
                counts.l1d_writebacks += l1d_writebacks
                counts.l2_accesses += l2_accesses
                counts.memory_accesses += memory_accesses

                if not measured:
                    ctx.discard_interval()
                elif chunk == interval_instructions:
                    ctx.total_seen = total_seen
                    ctx.close_interval()

            ctx.total_seen = total_seen
            ctx.close_interval(final=True)
            return

        last_fetch_block = -1
        total_seen = 0
        position = 0
        while position < n:
            stop = position + interval_instructions
            if stop > n:
                stop = n
            chunk = stop - position
            pcs = pc_view[position:stop].tolist()
            flags = flag_view[position:stop].tolist()
            addresses = address_view[position:stop].tolist()
            position = stop

            ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
                decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
            )

            counts = ctx.counts
            counts.instructions += chunk
            counts.branches += branches
            counts.branch_mispredicts += branch_mispredicts
            counts.l1d_accesses += memory_refs
            counts.l1d_stores += stores
            total_seen += chunk

            (
                l1i_accesses, l1i_misses, l1i_memory,
                l1d_misses, l1d_memory, l1d_writebacks,
                l2_accesses, memory_accesses,
            ) = dispatch(ops, instruction_fetch, data_access)

            counts.l1i_accesses += l1i_accesses
            counts.l1i_misses += l1i_misses
            counts.l1i_memory_accesses += l1i_memory
            counts.l1d_misses += l1d_misses
            counts.l1d_memory_accesses += l1d_memory
            counts.l1d_writebacks += l1d_writebacks
            counts.l2_accesses += l2_accesses
            counts.memory_accesses += memory_accesses

            if chunk == interval_instructions:
                ctx.total_seen = total_seen
                ctx.close_interval()

        ctx.total_seen = total_seen
        ctx.close_interval(final=True)


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------

#: The engine used when neither the simulator nor the job names one.
DEFAULT_ENGINE = "columnar"

_ENGINE_REGISTRY: Dict[str, Type[ReplayEngine]] = {
    ReferenceEngine.name: ReferenceEngine,
    ColumnarEngine.name: ColumnarEngine,
}


def register_engine(cls: Type[ReplayEngine]) -> Type[ReplayEngine]:
    """Register a custom replay engine class under its ``name``.

    Same contract as organization registration: the name must be unique
    (re-registering a *different* class under a taken name is rejected,
    since jobs and CLI flags select engines by name), and the class must be
    importable for worker processes to rebuild it.  Usable as a decorator.
    """
    if not cls.name:
        raise SimulationError(f"engine class {cls.__name__} must define a non-empty name")
    existing = _ENGINE_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise SimulationError(
            f"engine name {cls.name!r} is already registered to {existing.__name__}; "
            f"give {cls.__name__} a distinct name"
        )
    _ENGINE_REGISTRY[cls.name] = cls
    return cls


def available_engines():
    """Sorted names of every registered replay engine."""
    return sorted(_ENGINE_REGISTRY)


def engine_name(engine: Union[str, ReplayEngine, None]) -> Union[str, None]:
    """The registry name for an engine argument (None stays None).

    Validates like :func:`repro.sim.runner.require_registered` does for
    organizations: an instance whose class is not the one registered under
    its name is rejected, because a job spec carries only the name and a
    worker would silently rebuild the registered class instead.
    """
    if engine is None:
        return None
    if isinstance(engine, str):
        get_engine(engine)  # raises on unknown names
        return engine
    if isinstance(engine, ReplayEngine):
        registered = _ENGINE_REGISTRY.get(engine.name)
        if registered is not type(engine):
            raise SimulationError(
                f"engine class {type(engine).__name__} is not registered under "
                f"{engine.name!r}; register it with repro.sim.engine.register_engine"
            )
        return engine.name
    raise SimulationError(
        f"engine must be a name or a ReplayEngine instance, got {type(engine).__name__}"
    )


def get_engine(engine: Union[str, ReplayEngine, None] = None) -> ReplayEngine:
    """Resolve an engine argument (name, instance, or None for the default)."""
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, ReplayEngine):
        return engine
    if isinstance(engine, str):
        cls = _ENGINE_REGISTRY.get(engine)
        if cls is None:
            known = ", ".join(available_engines())
            raise SimulationError(
                f"unknown replay engine {engine!r}; available engines: {known} "
                f"(use repro.sim.engine.register_engine for custom classes)"
            )
        return cls()
    raise SimulationError(
        f"engine must be a name or a ReplayEngine instance, got {type(engine).__name__}"
    )
