"""Pluggable replay engines: the simulator's per-instruction hot loop.

:class:`repro.sim.simulator.Simulator` is split into a thin orchestration
shell (build the caches, hierarchy, timing and energy models; aggregate the
final result) and a *replay engine* that owns the only per-instruction code
in the project.  Engines are interchangeable and must be **bit-identical**:
for any trace and setup, every engine produces exactly the same
:class:`~repro.sim.results.SimulationResult` (``to_dict()`` equality is
enforced by the cross-engine equivalence suite in
``tests/sim/test_engines.py`` and ``tests/properties/test_property_engines.py``).

Three engines ship:

* :class:`ReferenceEngine` — the historical per-record loop: iterate the
  trace's row view, unpack one :class:`InstructionRecord` per instruction.
  Kept as the executable specification the fast paths are checked against.
* :class:`ColumnarScalarEngine` — replays straight from the trace's
  structure-of-arrays columns.  Each interval is pre-decoded *once* into a
  flat cache-operation stream (fetch-block-change detection, memory-op
  extraction with the store bit resolved), so the execute loop touches only
  instructions that actually reach the caches and never materialises a
  record object.  Branches are resolved *during* the decode — the branch
  predictor shares no state with the caches, so predicting while decoding
  is bit-identical to predicting in program-order between cache events —
  which keeps branch events out of the dispatch stream entirely.
  Instructions with no event (no new fetch block, no branch, no memory
  reference — typically around half the stream) cost one flag test instead
  of a full loop body.  The dispatch loop runs the L1 hit paths inline
  against hoisted kernel state (:func:`dispatch_cache_ops_fast`) and feeds
  only actual misses to the hierarchy's allocation-free packed kernel
  (``_miss_packed``, see :mod:`repro.cache.hierarchy`), decoding the
  packed outcome ints with bit ops, so a replayed memory access allocates
  nothing end to end; the reference engine keeps exercising the
  object-returning wrapper path.
* :class:`ColumnarEngine` (the default) — the columnar engine plus the
  whole-trace pre-decode memo (:mod:`repro.sim.predecode`): the
  configuration-invariant decode phase is computed once per (trace, block
  mask) — vectorized when NumPy is importable — memoized in memory and in
  the on-disk trace cache, and every exhaustive replay of that trace
  slices its intervals out of the precomputed stream in O(1).

The decode and dispatch passes are exposed as module-level helpers
(:func:`decode_interval`, :func:`dispatch_cache_ops`,
:func:`dispatch_cache_ops_fast`) because the fused multi-configuration
ladder engine (:mod:`repro.sim.ladder`) reuses them: one decode pass feeds
K per-configuration dispatch loops, which is exactly why the cache-only op
stream exists as a separate artifact.

Engine selection: ``Simulator(engine=...)`` / ``Simulator.run(engine=...)``
accept an engine name or instance; :class:`~repro.sim.runner.SimJob` carries
the name so sweeps replay with the engine the caller chose (CLI:
``--engine {reference,columnar,columnar-scalar}``).  Custom engines
register with :func:`register_engine`.

Interval semantics live in :class:`ReplayContext.close_interval`, shared by
every engine, so timing/energy aggregation, warmup accounting and resizing
decisions cannot drift between implementations — an engine only decides how
to walk the trace and feed the caches/predictor in program order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type, Union

from repro.cache.cache import (
    PACKED_FILLED,
    PACKED_WRITEBACK_SHIFT,
    PACKED_WRITEBACK_VALID,
)
from repro.cache.hierarchy import (
    HIER_COUNT_MASK,
    HIER_L2_ACCESSES_SHIFT,
    HIER_MEM_ACCESSES_SHIFT,
)
from repro.common.errors import SimulationError
from repro.metrics.counts import IntervalCounts
from repro.sim.predecode import decoded_for
from repro.workloads.trace import (
    FLAG_BRANCH,
    FLAG_MEM,
    FLAG_STORE,
    FLAG_TAKEN,
    Trace,
)

#: Operation codes of the decoded per-interval cache-op stream.  The stream
#: is a flat list alternating ``code, operand``: the operand is the fetch PC
#: or the data address.  Branches never enter the stream — they are resolved
#: during the decode pass (see :func:`decode_interval`).
_OP_FETCH = 0
_OP_LOAD = 1
_OP_STORE = 2


def sampling_plan(n, interval_instructions, sample_every, sample_warmup):
    """The segment schedule for interval sampling, or None when not sampling.

    With ``sample_every`` > 1 only every Nth interval of the trace is
    simulated (interval 0, N, 2N, …), each optionally preceded by a warmup
    prefix of up to ``sample_warmup`` instructions replayed to re-warm cache
    and predictor state but excluded from all statistics — the SimPoint-style
    scheme documented in ``docs/SAMPLING.md``.  Returns a list of
    ``(start, stop, measured)`` row ranges in replay order; unmentioned rows
    are skipped entirely.  Warmup ranges are pre-split into chunks of at most
    ``interval_instructions`` rows so engines that decode a segment at a
    time keep their bounded-memory property.

    When ``sample_every`` is 1 the answer is None and engines take their
    exhaustive path untouched.
    """
    if sample_every <= 1:
        return None
    segments = []
    prev_end = 0
    index = 0
    start = 0
    while start < n:
        stop = start + interval_instructions
        if stop > n:
            stop = n
        if index % sample_every == 0:
            warm = max(prev_end, start - sample_warmup)
            while warm < start:
                warm_stop = min(warm + interval_instructions, start)
                segments.append((warm, warm_stop, False))
                warm = warm_stop
            segments.append((start, stop, True))
            prev_end = stop
        start = stop
        index += 1
    return segments


def decode_interval(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict):
    """Decode one interval's columns into a cache-op stream plus totals.

    One linear scan over ``chunk`` unboxed column entries emits, in program
    order, only the events that touch cache state — fetch-block changes and
    memory ops with the store bit resolved — and resolves every branch
    against ``predict`` (a bound ``predict_and_update``) on the spot.
    Folding prediction into the decode is safe because the predictor and
    the caches share no state: per-interval totals are what the interval
    accounting consumes, and those are order-independent between the two
    machines.  Crucially it also means the returned op stream is *pure
    cache work*, so a fused ladder replay can run this decode (and the
    predictor) once and re-dispatch the stream to K cache hierarchies.

    Returns ``(ops, last_fetch_block, branches, branch_mispredicts,
    memory_refs, stores)``; ``last_fetch_block`` threads the fetch-block
    dedup state across interval boundaries.
    """
    ops = []
    append = ops.append
    branches = 0
    branch_mispredicts = 0
    memory_refs = 0
    stores = 0
    branch_flag, mem_flag = FLAG_BRANCH, FLAG_MEM
    store_flag, taken_flag = FLAG_STORE, FLAG_TAKEN
    op_fetch, op_load, op_store = _OP_FETCH, _OP_LOAD, _OP_STORE
    for k in range(chunk):
        pc = pcs[k]
        fetch_block = pc & block_mask
        if fetch_block != last_fetch_block:
            last_fetch_block = fetch_block
            append(op_fetch)
            append(pc)
        flag = flags[k]
        if flag:
            if flag & branch_flag:
                branches += 1
                if predict(pc, True if flag & taken_flag else False):
                    branch_mispredicts += 1
            if flag & mem_flag:
                if flag & store_flag:
                    stores += 1
                    append(op_store)
                else:
                    append(op_load)
                memory_refs += 1
                append(addresses[k])
    return ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores


def dispatch_cache_ops(ops, instruction_fetch, data_access):
    """Drive one hierarchy through a decoded cache-op stream, in order.

    ``instruction_fetch`` / ``data_access`` are the hierarchy's bound packed
    kernels; every outcome is decoded with shift-and-mask ops so the loop
    allocates nothing per access, including on misses.  Returns the interval
    miss statistics as a flat tuple ``(l1i_accesses, l1i_misses,
    l1i_memory, l1d_misses, l1d_memory, l1d_writebacks, l2_accesses,
    memory_accesses)`` — one tuple per interval, accumulated into
    :class:`~repro.metrics.counts.IntervalCounts` by the caller.  The fused
    ladder engine calls this once per configuration per interval on the
    same op stream.
    """
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    op_fetch, op_load = _OP_FETCH, _OP_LOAD
    l1i_accesses = 0
    l1i_misses = 0
    l1i_memory = 0
    l1d_misses = 0
    l1d_memory = 0
    l1d_writebacks = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(ops)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            packed = instruction_fetch(operand)
            l1i_accesses += 1
            if not packed & 1:
                l1i_misses += 1
                l2_accesses += (packed >> l2a_shift) & count_mask
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1i_memory += transfers
        else:
            packed = data_access(operand, code != op_load)
            if not packed & 1:
                l1d_misses += 1
                fills = (packed >> l2a_shift) & count_mask
                l2_accesses += fills
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1d_memory += transfers
                if fills > 1:
                    l1d_writebacks += fills - 1
    return (
        l1i_accesses, l1i_misses, l1i_memory,
        l1d_misses, l1d_memory, l1d_writebacks,
        l2_accesses, memory_accesses,
    )


def dispatch_cache_ops_fast(ops, hierarchy):
    """:func:`dispatch_cache_ops` with the L1 hit paths run inline.

    Around nine of every ten ops hit their L1, and for a hit the packed
    kernel's whole job is a dict probe plus an LRU refresh — yet each one
    costs two Python call frames (hierarchy wrapper → cache kernel) and a
    handful of per-call stat attribute stores.  This variant hoists both
    L1 kernels' state (:meth:`repro.cache.cache.Cache._kernel_state`) into
    locals for the duration of one interval, runs the full L1 access
    inline — dict ops, victim choice and fill included, mirroring
    ``access_packed`` statement for statement — and only calls out to the
    hierarchy's shared ``_miss_packed`` fill path for actual misses: the
    kernel is fed nothing but the residue.  Misses with a *clean* L1
    victim — the dominant shape — are themselves resolved entirely inline
    whatever the L2 outcome: an L2 read hit is one dict probe plus
    refresh, and an L2 read miss adds the L2 fill/victim-spill dict ops
    and main-memory counter bumps (``hierarchy._memory_state``; the
    replay path never consumes the miss latency, which is all
    ``_miss_packed`` computes beyond that).  ``_miss_packed`` is left
    only the dirty-L1-victim spills, plus every miss on hierarchies
    whose L2 or memory models are non-stock.
    Cache stat deltas accumulate in locals and are flushed into each
    cache's ``stats`` before returning, so at every interval boundary
    (where strategies and accounting look) the counters are exactly the
    per-call kernel's.

    Hierarchies whose L1s do not expose ``_kernel_state`` (object-API-only
    caches adapted by the hierarchy) fall back to the per-call loop.
    Bit-identical either way — the equivalence suites pin it.
    """
    l1i_state = getattr(hierarchy.l1i, "_kernel_state", None)
    l1d_state = getattr(hierarchy.l1d, "_kernel_state", None)
    if l1i_state is None or l1d_state is None:
        return dispatch_cache_ops(
            ops, hierarchy.instruction_fetch_packed, hierarchy.data_access_packed
        )
    (i_stats, i_sets, i_off, i_idx, i_mask, i_ways, i_refresh, i_random, i_selector) = (
        l1i_state()
    )
    (d_stats, d_sets, d_off, d_idx, d_mask, d_ways, d_refresh, d_random, d_selector) = (
        l1d_state()
    )
    l2_state = getattr(hierarchy.l2, "_kernel_state", None)
    if l2_state is not None:
        (l2_stats, l2_sets, l2_off, l2_idx, l2_mask, l2_ways, l2_refresh,
         l2_random, l2_selector) = l2_state()
        l2_shift1 = l2_off + 1
        mem_state = hierarchy._memory_state()
    else:
        l2_stats = l2_sets = l2_off = l2_idx = l2_mask = None
        l2_ways = l2_refresh = l2_random = l2_selector = l2_shift1 = None
        mem_state = None
    inline_mem = mem_state is not None
    if inline_mem:
        wb_pending = mem_state[4]._pending
        wb_entries = mem_state[4].num_entries
    else:
        wb_pending = wb_entries = None
    l2_hits = l2m = l2_wb = l2_whits = l2_wm = 0
    wb_enq = wb_over = wb_drain = 0
    miss_fill = hierarchy._miss_packed
    i_shift1 = i_off + 1
    d_shift1 = d_off + 1
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    filled, wb_valid, wb_shift = PACKED_FILLED, PACKED_WRITEBACK_VALID, PACKED_WRITEBACK_SHIFT
    op_fetch, op_load = _OP_FETCH, _OP_LOAD

    ia = ih = iwb = 0
    da = dw = dh = dwm = dwb = 0
    l1i_misses = 0
    l1i_memory = 0
    l1d_misses = 0
    l1d_memory = 0
    l1d_writebacks = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(ops)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            ia += 1
            block = operand >> i_off
            tag = block >> i_idx
            blocks = i_sets[block & i_mask]
            packed = blocks.get(tag)
            if packed is not None:
                ih += 1
                if i_refresh:
                    del blocks[tag]
                    blocks[tag] = packed
                continue
            victim = None
            if len(blocks) >= i_ways:
                victim_tag = i_selector.choose_victim(blocks) if i_random else next(iter(blocks))
                victim = blocks.pop(victim_tag)
            blocks[tag] = block << i_shift1
            if victim is not None and victim & 1:
                iwb += 1
                l1_packed = filled | wb_valid | ((victim >> 1) << wb_shift)
            else:
                # Clean victim: with no dirty L1 victim to spill, the whole
                # miss is the L2 read plus (on an L2 miss) pure memory
                # counter bumps — the replay path never consumes the
                # latency — so both L2 outcomes resolve inline without the
                # _miss_packed frame.
                if l2_sets is not None:
                    b2 = operand >> l2_off
                    t2 = b2 >> l2_idx
                    bl2 = l2_sets[b2 & l2_mask]
                    p2 = bl2.get(t2)
                    if p2 is not None:
                        if l2_refresh:
                            del bl2[t2]
                            bl2[t2] = p2
                        l2_hits += 1
                        l1i_misses += 1
                        l2_accesses += 1
                        continue
                    if inline_mem:
                        # L2 read miss: fill (read -> clean), spill a dirty
                        # L2 victim to memory — access_packed's miss body.
                        l2m += 1
                        v2 = None
                        if len(bl2) >= l2_ways:
                            vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                            v2 = bl2.pop(vt2)
                        bl2[t2] = b2 << l2_shift1
                        if v2 is not None and v2 & 1:
                            l2_wb += 1
                            transfers = 2
                        else:
                            transfers = 1
                        l1i_misses += 1
                        l2_accesses += 1
                        memory_accesses += transfers
                        l1i_memory += transfers
                        continue
                l1_packed = filled
            packed = miss_fill(l1_packed, operand)
            l1i_misses += 1
            l2_accesses += (packed >> l2a_shift) & count_mask
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1i_memory += transfers
        else:
            is_write = code != op_load
            da += 1
            if is_write:
                dw += 1
            block = operand >> d_off
            tag = block >> d_idx
            blocks = d_sets[block & d_mask]
            packed = blocks.get(tag)
            if packed is not None:
                dh += 1
                if is_write:
                    packed |= 1
                    if d_refresh:
                        del blocks[tag]
                    blocks[tag] = packed
                elif d_refresh:
                    del blocks[tag]
                    blocks[tag] = packed
                continue
            if is_write:
                dwm += 1
            victim = None
            if len(blocks) >= d_ways:
                victim_tag = d_selector.choose_victim(blocks) if d_random else next(iter(blocks))
                victim = blocks.pop(victim_tag)
            blocks[tag] = (block << d_shift1) | (1 if is_write else 0)
            if victim is not None and victim & 1:
                dwb += 1
                if inline_mem:
                    # Dirty victim: L2 read fill at the miss address, then
                    # the victim staged through the write-back buffer and
                    # written into L2 (write-allocate) — _miss_packed's
                    # whole body as dict ops and counter bumps.
                    b2 = operand >> l2_off
                    t2 = b2 >> l2_idx
                    bl2 = l2_sets[b2 & l2_mask]
                    p2 = bl2.get(t2)
                    if p2 is not None:
                        if l2_refresh:
                            del bl2[t2]
                            bl2[t2] = p2
                        l2_hits += 1
                        transfers = 0
                    else:
                        l2m += 1
                        v2 = None
                        if len(bl2) >= l2_ways:
                            vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                            v2 = bl2.pop(vt2)
                        bl2[t2] = b2 << l2_shift1
                        if v2 is not None and v2 & 1:
                            l2_wb += 1
                            transfers = 2
                        else:
                            transfers = 1
                    wb_addr = victim >> 1
                    wb_enq += 1
                    if len(wb_pending) >= wb_entries:
                        wb_over += 1
                        wb_pending.popleft()
                        wb_drain += 1
                    wb_pending.append(wb_addr)
                    b3 = wb_addr >> l2_off
                    t3 = b3 >> l2_idx
                    bl3 = l2_sets[b3 & l2_mask]
                    p3 = bl3.get(t3)
                    if p3 is not None:
                        l2_whits += 1
                        p3 |= 1
                        if l2_refresh:
                            del bl3[t3]
                        bl3[t3] = p3
                    else:
                        l2_wm += 1
                        v3 = None
                        if len(bl3) >= l2_ways:
                            vt3 = l2_selector.choose_victim(bl3) if l2_random else next(iter(bl3))
                            v3 = bl3.pop(vt3)
                        bl3[t3] = (b3 << l2_shift1) | 1
                        transfers += 1
                        if v3 is not None and v3 & 1:
                            l2_wb += 1
                            transfers += 1
                    l1d_misses += 1
                    l1d_writebacks += 1
                    l2_accesses += 2
                    memory_accesses += transfers
                    l1d_memory += transfers
                    continue
                l1_packed = filled | wb_valid | ((victim >> 1) << wb_shift)
            else:
                if l2_sets is not None:
                    b2 = operand >> l2_off
                    t2 = b2 >> l2_idx
                    bl2 = l2_sets[b2 & l2_mask]
                    p2 = bl2.get(t2)
                    if p2 is not None:
                        if l2_refresh:
                            del bl2[t2]
                            bl2[t2] = p2
                        l2_hits += 1
                        l1d_misses += 1
                        l2_accesses += 1
                        continue
                    if inline_mem:
                        l2m += 1
                        v2 = None
                        if len(bl2) >= l2_ways:
                            vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                            v2 = bl2.pop(vt2)
                        bl2[t2] = b2 << l2_shift1
                        if v2 is not None and v2 & 1:
                            l2_wb += 1
                            transfers = 2
                        else:
                            transfers = 1
                        l1d_misses += 1
                        l2_accesses += 1
                        memory_accesses += transfers
                        l1d_memory += transfers
                        continue
                l1_packed = filled
            packed = miss_fill(l1_packed, operand)
            l1d_misses += 1
            fills = (packed >> l2a_shift) & count_mask
            l2_accesses += fills
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1d_memory += transfers
            if fills > 1:
                l1d_writebacks += fills - 1

    i_stats.accesses += ia
    i_stats.reads += ia
    i_stats.hits += ih
    im = ia - ih
    i_stats.misses += im
    i_stats.read_misses += im
    i_stats.fills += im
    i_stats.writebacks += iwb
    d_stats.accesses += da
    d_stats.writes += dw
    d_stats.reads += da - dw
    d_stats.hits += dh
    dm = da - dh
    d_stats.misses += dm
    d_stats.write_misses += dwm
    d_stats.read_misses += dm - dwm
    d_stats.fills += dm
    d_stats.writebacks += dwb
    if l2_hits or l2m or l2_whits or l2_wm:
        l2_stats.accesses += l2_hits + l2m + l2_whits + l2_wm
        l2_stats.reads += l2_hits + l2m
        l2_stats.writes += l2_whits + l2_wm
        l2_stats.hits += l2_hits + l2_whits
        l2_stats.misses += l2m + l2_wm
        l2_stats.read_misses += l2m
        l2_stats.write_misses += l2_wm
        l2_stats.fills += l2m + l2_wm
        l2_stats.writebacks += l2_wb
    if l2m or l2_wm or l2_wb:
        mem_reads, mem_writes, mem_bytes, l2_block, wb_buffer = mem_state
        mem_reads.value += l2m + l2_wm
        mem_writes.value += l2_wb
        mem_bytes.value += (l2m + l2_wm + l2_wb) * l2_block
    if wb_enq:
        wb_buffer = mem_state[4]
        wb_buffer.enqueued += wb_enq
        wb_buffer.overflows += wb_over
        wb_buffer.drained += wb_drain
    return (
        ia, l1i_misses, l1i_memory,
        l1d_misses, l1d_memory, l1d_writebacks,
        l2_accesses, memory_accesses,
    )


class ReplayContext:
    """Everything an engine needs to replay one run, plus interval closing.

    Built by the simulator shell per run.  Engines mutate :attr:`counts`
    (the open interval's accumulator), keep :attr:`total_seen` current, and
    call :meth:`close_interval` at every interval boundary; the context owns
    the timing/energy aggregation, warmup bookkeeping and resizing decisions
    so those are identical across engines by construction.
    """

    __slots__ = (
        "hierarchy", "predictor", "core_model", "accountant",
        "d_runtime", "i_runtime", "result",
        "interval_instructions", "warmup_instructions", "block_mask", "mlp",
        "counts", "total_seen", "measured_instructions", "measured_cycles",
        "sample_every", "sample_warmup", "total_intervals", "interval_samples",
    )

    def __init__(
        self,
        hierarchy,
        predictor,
        core_model,
        accountant,
        d_runtime,
        i_runtime,
        result,
        interval_instructions: int,
        warmup_instructions: int,
        block_mask: int,
        memory_level_parallelism: float,
        sample_every: int = 1,
        sample_warmup: int = 0,
    ) -> None:
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.core_model = core_model
        self.accountant = accountant
        self.d_runtime = d_runtime
        self.i_runtime = i_runtime
        self.result = result
        self.interval_instructions = interval_instructions
        self.warmup_instructions = warmup_instructions
        self.block_mask = block_mask
        self.mlp = memory_level_parallelism
        self.counts = IntervalCounts(memory_level_parallelism=memory_level_parallelism)
        self.total_seen = 0
        self.measured_instructions = 0
        self.measured_cycles = 0.0
        self.sample_every = sample_every
        self.sample_warmup = sample_warmup
        self.total_intervals = 0
        #: Per measured interval (sampling only): (l1d_accesses, l1d_misses,
        #: l1i_accesses, l1i_misses) — the raw material of the error bars.
        self.interval_samples = []

    def sampling_plan(self, n: int):
        """The segment schedule for an ``n``-row trace (see :func:`sampling_plan`)."""
        return sampling_plan(
            n, self.interval_instructions, self.sample_every, self.sample_warmup
        )

    def close_interval(self, final: bool = False) -> None:
        """Close the open interval: timing, energy, warmup, resizing.

        Mirrors the pre-split ``Simulator.run`` inner function exactly: a
        non-final close lets each L1's strategy observe the interval and
        charges any resulting flush writebacks to the *next* interval; the
        final close only aggregates.
        """
        counts = self.counts
        if counts.instructions == 0:
            return
        d_runtime, i_runtime, result = self.d_runtime, self.i_runtime, self.result
        cycles = self.core_model.interval_cycles(counts)
        breakdown = self.accountant.interval_breakdown(
            counts,
            cycles,
            l1d_state=d_runtime.subarray_state,
            l1d_ways=d_runtime.enabled_ways,
            l1i_state=i_runtime.subarray_state,
            l1i_ways=i_runtime.enabled_ways,
        )
        in_warmup = self.total_seen <= self.warmup_instructions
        if not in_warmup:
            if self.sample_every > 1:
                self.interval_samples.append((
                    counts.l1d_accesses, counts.l1d_misses,
                    counts.l1i_accesses, counts.l1i_misses,
                ))
            self.measured_instructions += counts.instructions
            self.measured_cycles += cycles
            result.energy.add(breakdown)
            result.l1d_accesses += counts.l1d_accesses
            result.l1d_misses += counts.l1d_misses
            result.l1i_accesses += counts.l1i_accesses
            result.l1i_misses += counts.l1i_misses
            result.l2_accesses += counts.l2_accesses
            result.l2_misses += counts.memory_accesses
            result.branch_mispredicts += counts.branch_mispredicts
            d_runtime.capacity_weight += d_runtime.current_capacity * counts.instructions
            i_runtime.capacity_weight += i_runtime.current_capacity * counts.instructions

        if not final:
            d_flush = d_runtime.observe_interval(
                self.hierarchy, counts.l1d_accesses, counts.l1d_misses
            )
            i_flush = i_runtime.observe_interval(
                self.hierarchy, counts.l1i_accesses, counts.l1i_misses
            )
            counts = IntervalCounts(memory_level_parallelism=self.mlp)
            self.counts = counts
            if d_flush or i_flush:
                counts.resize_flush_writebacks = d_flush + i_flush
                counts.l2_accesses += d_flush + i_flush

    def discard_interval(self) -> None:
        """Drop the open accumulator after replaying a warmup segment.

        Warmup segments of a sampled replay feed the caches and the branch
        predictor (state warms up) but contribute nothing to statistics,
        timing, energy or resizing decisions — they never reach
        :meth:`close_interval`.  The one thing preserved is a resize-flush
        charge carried in from the previous measured interval's close: those
        writebacks are real L2 traffic owed to the *next measured* interval,
        so they survive the discard (see ``docs/SAMPLING.md``).
        """
        carried = self.counts.resize_flush_writebacks
        counts = IntervalCounts(memory_level_parallelism=self.mlp)
        if carried:
            counts.resize_flush_writebacks = carried
            counts.l2_accesses += carried
        self.counts = counts


class ReplayEngine(ABC):
    """Strategy interface for the simulator's per-instruction replay loop."""

    #: Registry name; also what :class:`~repro.sim.runner.SimJob` records.
    name: str = ""

    @abstractmethod
    def replay(self, trace: Trace, ctx: ReplayContext) -> None:
        """Replay ``trace`` through ``ctx``'s hierarchy and predictor.

        Contract: feed every L1i fetch, branch and data access in program
        order, keep ``ctx.counts``/``ctx.total_seen`` current, call
        ``ctx.close_interval()`` after every ``ctx.interval_instructions``
        instructions and ``ctx.close_interval(final=True)`` once at the end.
        """


class ReferenceEngine(ReplayEngine):
    """The historical per-record loop, kept as the executable specification.

    Iterates the trace's row-compatibility view, so it exercises exactly
    the code path (and arithmetic) the project shipped before the columnar
    refactor; the equivalence suite pins :class:`ColumnarEngine` to it.
    """

    name = "reference"

    def replay(self, trace: Trace, ctx: ReplayContext) -> None:
        interval_instructions = ctx.interval_instructions
        block_mask = ctx.block_mask
        data_access = ctx.hierarchy.data_access
        instruction_fetch = ctx.hierarchy.instruction_fetch
        predict = ctx.predictor.predict_and_update

        plan = ctx.sampling_plan(len(trace))
        if plan is not None:
            self._replay_sampled(trace, ctx, plan)
            return

        counts = ctx.counts
        last_fetch_block = -1
        instructions_in_interval = 0
        total_seen = 0

        for record in trace.records:
            pc, data_address, is_store, is_branch, taken = record
            counts.instructions += 1
            total_seen += 1

            fetch_block = pc & block_mask
            if fetch_block != last_fetch_block:
                last_fetch_block = fetch_block
                outcome = instruction_fetch(pc)
                counts.l1i_accesses += 1
                if not outcome.l1_hit:
                    counts.l1i_misses += 1
                    counts.l2_accesses += outcome.l2_accesses
                    counts.memory_accesses += outcome.memory_accesses
                    counts.l1i_memory_accesses += outcome.memory_accesses

            if is_branch:
                counts.branches += 1
                if predict(pc, taken):
                    counts.branch_mispredicts += 1

            if data_address is not None:
                outcome = data_access(data_address, is_store)
                counts.l1d_accesses += 1
                if is_store:
                    counts.l1d_stores += 1
                if not outcome.l1_hit:
                    counts.l1d_misses += 1
                    counts.l2_accesses += outcome.l2_accesses
                    counts.memory_accesses += outcome.memory_accesses
                    counts.l1d_memory_accesses += outcome.memory_accesses
                    if outcome.l2_accesses > 1:
                        counts.l1d_writebacks += outcome.l2_accesses - 1

            instructions_in_interval += 1
            if instructions_in_interval >= interval_instructions:
                ctx.total_seen = total_seen
                ctx.close_interval()
                counts = ctx.counts
                instructions_in_interval = 0

        ctx.total_seen = total_seen
        ctx.close_interval(final=True)

    def _replay_sampled(self, trace: Trace, ctx: ReplayContext, plan) -> None:
        """Walk the sampling plan with the same per-record arithmetic.

        Identical record handling to the exhaustive loop; the only
        differences are segment-driven: the fetch-block dedup state resets
        across a skipped gap (the previous block is unknowable), measured
        segments close their interval, warmup segments are discarded.
        """
        interval_instructions = ctx.interval_instructions
        block_mask = ctx.block_mask
        data_access = ctx.hierarchy.data_access
        instruction_fetch = ctx.hierarchy.instruction_fetch
        predict = ctx.predictor.predict_and_update
        records = trace.records

        last_fetch_block = -1
        total_seen = 0
        prev_stop = 0
        for start, stop, measured in plan:
            if start != prev_stop:
                last_fetch_block = -1
            counts = ctx.counts
            for index in range(start, stop):
                pc, data_address, is_store, is_branch, taken = records[index]
                counts.instructions += 1

                fetch_block = pc & block_mask
                if fetch_block != last_fetch_block:
                    last_fetch_block = fetch_block
                    outcome = instruction_fetch(pc)
                    counts.l1i_accesses += 1
                    if not outcome.l1_hit:
                        counts.l1i_misses += 1
                        counts.l2_accesses += outcome.l2_accesses
                        counts.memory_accesses += outcome.memory_accesses
                        counts.l1i_memory_accesses += outcome.memory_accesses

                if is_branch:
                    counts.branches += 1
                    if predict(pc, taken):
                        counts.branch_mispredicts += 1

                if data_address is not None:
                    outcome = data_access(data_address, is_store)
                    counts.l1d_accesses += 1
                    if is_store:
                        counts.l1d_stores += 1
                    if not outcome.l1_hit:
                        counts.l1d_misses += 1
                        counts.l2_accesses += outcome.l2_accesses
                        counts.memory_accesses += outcome.memory_accesses
                        counts.l1d_memory_accesses += outcome.memory_accesses
                        if outcome.l2_accesses > 1:
                            counts.l1d_writebacks += outcome.l2_accesses - 1

            total_seen += stop - start
            prev_stop = stop
            if not measured:
                ctx.discard_interval()
            elif stop - start == interval_instructions:
                ctx.total_seen = total_seen
                ctx.close_interval()

        ctx.total_seen = total_seen
        ctx.close_interval(final=True)


def _columnar_replay_sampled(trace: Trace, ctx: ReplayContext, plan) -> None:
    """Sampled columnar walk: decode and dispatch segment by segment.

    The plan dictates which row ranges are replayed; decode/dispatch per
    segment are identical to the exhaustive scalar path (segments are
    pre-split to at most one interval), and the fetch-block dedup state
    resets across skipped gaps.  Pre-decode never applies here — the
    predictor state at a measured segment depends on exactly which warmup
    rows were replayed, which is plan-specific, not trace-invariant.
    """
    pc_column, address_column, flag_column = trace.columns()
    pc_view = memoryview(pc_column)
    address_view = memoryview(address_column)
    flag_view = memoryview(flag_column)

    interval_instructions = ctx.interval_instructions
    block_mask = ctx.block_mask
    hierarchy = ctx.hierarchy
    predict = ctx.predictor.predict_and_update
    decode = decode_interval
    dispatch = dispatch_cache_ops_fast

    last_fetch_block = -1
    total_seen = 0
    prev_stop = 0
    for start, stop, measured in plan:
        if start != prev_stop:
            last_fetch_block = -1
        chunk = stop - start
        pcs = pc_view[start:stop].tolist()
        flags = flag_view[start:stop].tolist()
        addresses = address_view[start:stop].tolist()

        ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
            decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
        )

        counts = ctx.counts
        counts.instructions += chunk
        counts.branches += branches
        counts.branch_mispredicts += branch_mispredicts
        counts.l1d_accesses += memory_refs
        counts.l1d_stores += stores
        total_seen += chunk
        prev_stop = stop

        (
            l1i_accesses, l1i_misses, l1i_memory,
            l1d_misses, l1d_memory, l1d_writebacks,
            l2_accesses, memory_accesses,
        ) = dispatch(ops, hierarchy)

        counts.l1i_accesses += l1i_accesses
        counts.l1i_misses += l1i_misses
        counts.l1i_memory_accesses += l1i_memory
        counts.l1d_misses += l1d_misses
        counts.l1d_memory_accesses += l1d_memory
        counts.l1d_writebacks += l1d_writebacks
        counts.l2_accesses += l2_accesses
        counts.memory_accesses += memory_accesses

        if not measured:
            ctx.discard_interval()
        elif chunk == interval_instructions:
            ctx.total_seen = total_seen
            ctx.close_interval()

    ctx.total_seen = total_seen
    ctx.close_interval(final=True)


def _columnar_replay_scalar(trace: Trace, ctx: ReplayContext) -> None:
    """Exhaustive columnar walk decoding each interval on the fly."""
    pc_column, address_column, flag_column = trace.columns()
    pc_view = memoryview(pc_column)
    address_view = memoryview(address_column)
    flag_view = memoryview(flag_column)

    n = len(trace)
    interval_instructions = ctx.interval_instructions
    block_mask = ctx.block_mask
    hierarchy = ctx.hierarchy
    predict = ctx.predictor.predict_and_update
    decode = decode_interval
    dispatch = dispatch_cache_ops_fast

    last_fetch_block = -1
    total_seen = 0
    position = 0
    while position < n:
        stop = position + interval_instructions
        if stop > n:
            stop = n
        chunk = stop - position
        pcs = pc_view[position:stop].tolist()
        flags = flag_view[position:stop].tolist()
        addresses = address_view[position:stop].tolist()
        position = stop

        ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
            decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
        )

        counts = ctx.counts
        counts.instructions += chunk
        counts.branches += branches
        counts.branch_mispredicts += branch_mispredicts
        counts.l1d_accesses += memory_refs
        counts.l1d_stores += stores
        total_seen += chunk

        (
            l1i_accesses, l1i_misses, l1i_memory,
            l1d_misses, l1d_memory, l1d_writebacks,
            l2_accesses, memory_accesses,
        ) = dispatch(ops, hierarchy)

        counts.l1i_accesses += l1i_accesses
        counts.l1i_misses += l1i_misses
        counts.l1i_memory_accesses += l1i_memory
        counts.l1d_misses += l1d_misses
        counts.l1d_memory_accesses += l1d_memory
        counts.l1d_writebacks += l1d_writebacks
        counts.l2_accesses += l2_accesses
        counts.memory_accesses += memory_accesses

        if chunk == interval_instructions:
            ctx.total_seen = total_seen
            ctx.close_interval()

    ctx.total_seen = total_seen
    ctx.close_interval(final=True)


def _columnar_replay_decoded(ctx: ReplayContext, decoded) -> None:
    """Exhaustive walk over a memoized whole-trace pre-decode.

    The decode phase is already done (``decoded`` holds the whole-trace op
    stream and per-row prefix totals, see :mod:`repro.sim.predecode`), so
    each interval is an O(1) slice plus prefix differences — the run's own
    predictor is never driven because the mispredict totals were resolved
    during the (memoized) decode, which the ``decoded_for`` gate guarantees
    is bit-identical for the fresh default predictor every run constructs.
    """
    n = decoded.n
    interval_instructions = ctx.interval_instructions
    hierarchy = ctx.hierarchy
    dispatch = dispatch_cache_ops_fast
    interval_ops = decoded.interval_ops
    branch_prefix = decoded.branch_prefix
    mispredict_prefix = decoded.mispredict_prefix
    memref_prefix = decoded.memref_prefix
    store_prefix = decoded.store_prefix

    total_seen = 0
    position = 0
    while position < n:
        stop = position + interval_instructions
        if stop > n:
            stop = n
        chunk = stop - position
        ops = interval_ops(position, stop)

        counts = ctx.counts
        counts.instructions += chunk
        counts.branches += branch_prefix[stop] - branch_prefix[position]
        counts.branch_mispredicts += (
            mispredict_prefix[stop] - mispredict_prefix[position]
        )
        counts.l1d_accesses += memref_prefix[stop] - memref_prefix[position]
        counts.l1d_stores += store_prefix[stop] - store_prefix[position]
        total_seen += chunk
        position = stop

        (
            l1i_accesses, l1i_misses, l1i_memory,
            l1d_misses, l1d_memory, l1d_writebacks,
            l2_accesses, memory_accesses,
        ) = dispatch(ops, hierarchy)

        counts.l1i_accesses += l1i_accesses
        counts.l1i_misses += l1i_misses
        counts.l1i_memory_accesses += l1i_memory
        counts.l1d_misses += l1d_misses
        counts.l1d_memory_accesses += l1d_memory
        counts.l1d_writebacks += l1d_writebacks
        counts.l2_accesses += l2_accesses
        counts.memory_accesses += memory_accesses

        if chunk == interval_instructions:
            ctx.total_seen = total_seen
            ctx.close_interval()

    ctx.total_seen = total_seen
    ctx.close_interval(final=True)


class ColumnarScalarEngine(ReplayEngine):
    """Replay straight from the trace columns, one decoded interval at a time.

    Per interval the decode pass (:func:`decode_interval`) reads the
    pc/flag/address columns exactly once (``memoryview`` slice → ``tolist``,
    a C-level copy into unboxed list indexing), resolves every branch
    against the predictor, and emits a flat op stream of only the events
    that touch *cache* state, in program order: fetch-block changes and
    memory ops with the store bit pre-resolved.  Pure counting
    (instructions, branch/store/access totals) is summed during the decode,
    so the execute pass (:func:`dispatch_cache_ops_fast`) is a tight
    dispatch over pre-extracted locals with zero per-instruction object
    churn: L1 hits run inline against hoisted kernel state, misses go
    through the hierarchy's packed-int kernel, and each outcome is decoded
    with shift-and-mask ops, allocating nothing even on misses.

    This engine always decodes on the fly; :class:`ColumnarEngine` layers
    the per-trace decode memo on top.  Kept registered so the equivalence
    suites (and debugging) can pin the memoized path against it directly.
    """

    name = "columnar-scalar"

    def replay(self, trace: Trace, ctx: ReplayContext) -> None:
        plan = ctx.sampling_plan(len(trace))
        if plan is not None:
            _columnar_replay_sampled(trace, ctx, plan)
        else:
            _columnar_replay_scalar(trace, ctx)


class ColumnarEngine(ColumnarScalarEngine):
    """The columnar engine plus the whole-trace pre-decode memo (the default).

    Exhaustive replays ask :func:`repro.sim.predecode.decoded_for` for the
    memoized configuration-invariant decode of (trace, block mask) — built
    once (vectorized when NumPy is importable), shared across every run of
    the same trace in the process and across processes via the on-disk
    trace memo — and walk it with :func:`_columnar_replay_decoded`.  Runs
    the gate refuses (non-default predictor, sampled plans, oversized
    traces) fall back to the scalar per-interval decode, bit-identically.
    """

    name = "columnar"

    def replay(self, trace: Trace, ctx: ReplayContext) -> None:
        plan = ctx.sampling_plan(len(trace))
        if plan is not None:
            _columnar_replay_sampled(trace, ctx, plan)
            return
        decoded = decoded_for(trace, ctx.block_mask, ctx.predictor)
        if decoded is None:
            _columnar_replay_scalar(trace, ctx)
        else:
            _columnar_replay_decoded(ctx, decoded)


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------

#: The engine used when neither the simulator nor the job names one.
DEFAULT_ENGINE = "columnar"

_ENGINE_REGISTRY: Dict[str, Type[ReplayEngine]] = {
    ReferenceEngine.name: ReferenceEngine,
    ColumnarScalarEngine.name: ColumnarScalarEngine,
    ColumnarEngine.name: ColumnarEngine,
}


def register_engine(cls: Type[ReplayEngine]) -> Type[ReplayEngine]:
    """Register a custom replay engine class under its ``name``.

    Same contract as organization registration: the name must be unique
    (re-registering a *different* class under a taken name is rejected,
    since jobs and CLI flags select engines by name), and the class must be
    importable for worker processes to rebuild it.  Usable as a decorator.
    """
    if not cls.name:
        raise SimulationError(f"engine class {cls.__name__} must define a non-empty name")
    existing = _ENGINE_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise SimulationError(
            f"engine name {cls.name!r} is already registered to {existing.__name__}; "
            f"give {cls.__name__} a distinct name"
        )
    _ENGINE_REGISTRY[cls.name] = cls
    return cls


def available_engines():
    """Sorted names of every registered replay engine."""
    return sorted(_ENGINE_REGISTRY)


def engine_name(engine: Union[str, ReplayEngine, None]) -> Union[str, None]:
    """The registry name for an engine argument (None stays None).

    Validates like :func:`repro.sim.runner.require_registered` does for
    organizations: an instance whose class is not the one registered under
    its name is rejected, because a job spec carries only the name and a
    worker would silently rebuild the registered class instead.
    """
    if engine is None:
        return None
    if isinstance(engine, str):
        get_engine(engine)  # raises on unknown names
        return engine
    if isinstance(engine, ReplayEngine):
        registered = _ENGINE_REGISTRY.get(engine.name)
        if registered is not type(engine):
            raise SimulationError(
                f"engine class {type(engine).__name__} is not registered under "
                f"{engine.name!r}; register it with repro.sim.engine.register_engine"
            )
        return engine.name
    raise SimulationError(
        f"engine must be a name or a ReplayEngine instance, got {type(engine).__name__}"
    )


def get_engine(engine: Union[str, ReplayEngine, None] = None) -> ReplayEngine:
    """Resolve an engine argument (name, instance, or None for the default)."""
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, ReplayEngine):
        return engine
    if isinstance(engine, str):
        cls = _ENGINE_REGISTRY.get(engine)
        if cls is None:
            known = ", ".join(available_engines())
            raise SimulationError(
                f"unknown replay engine {engine!r}; available engines: {known} "
                f"(use repro.sim.engine.register_engine for custom classes)"
            )
        return cls()
    raise SimulationError(
        f"engine must be a name or a ReplayEngine instance, got {type(engine).__name__}"
    )
