"""Futures for the deferred-submission job graph.

:meth:`repro.sim.runner.SweepRunner.submit` returns a :class:`SimFuture`
instead of executing the job on the spot.  Submissions accumulate in the
runner until something forces resolution — :meth:`SimFuture.result`,
:meth:`SweepRunner.gather` or an explicit :meth:`SweepRunner.drain` — at
which point *everything* pending executes as a small number of pool batches
(one per dependency wave) rather than one pool round-trip per job.  That is
what lets an entire evaluation (every baseline, every profiling ladder,
every dynamic and combined run, across all applications) flow through the
worker pool as two batches instead of hundreds of single-job submissions.

A future resolves in one of three ways:

* **from the cache** at submit time (the job's fingerprint hit the on-disk
  :class:`repro.sim.jobcache.JobCache`, or an identical job was already
  submitted to this runner — duplicate submissions share one future);
* **from a batch** the runner executed;
* **as a failure**, when the job raised in a worker (the worker traceback
  is preserved), its retry budget ran out (worker deaths, timeouts and
  other transient failures are retried per the runner's
  :class:`~repro.sim.runner.RetryPolicy` before the future fails — see
  :attr:`SimFuture.attempts`), or a dependency it was deferred on failed.

Deferred jobs (:meth:`SweepRunner.submit_deferred`) do not even exist as
:class:`repro.sim.runner.SimJob` specs yet: they carry a builder callable
plus the futures it depends on, and the runner invokes the builder only
once every dependency has resolved — this is how a dynamic-resizing run,
whose miss-bound/size-bound parameters are *derived from* the profiling
ladder's results, can be enqueued in the same breath as the ladder itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.sim.results import SimulationResult
    from repro.sim.runner import SweepRunner

#: Future lifecycle states.
PENDING = "pending"
RESOLVED = "resolved"
FAILED = "failed"


class SimFuture:
    """Handle to a simulation that may not have executed yet.

    Futures are created by the runner; user code only reads them.  Calling
    :meth:`result` on a pending future drains the owning runner — every job
    submitted so far (including jobs this one does not depend on) executes
    first, so interleaving ``submit`` and ``result`` calls degrades to the
    old one-batch-per-call behaviour while batching everything remains the
    fast path.
    """

    __slots__ = (
        "_runner", "_state", "_value", "_error", "_worker_traceback", "label", "attempts",
        "_callbacks",
    )

    def __init__(self, runner: "SweepRunner", label: str = "") -> None:
        self._runner = runner
        self._state = PENDING
        self._value: Optional["SimulationResult"] = None
        self._error: Optional[BaseException] = None
        self._worker_traceback: Optional[str] = None
        self._callbacks: list = []
        self.label = label
        #: Executions the job consumed before this future settled: 1 for
        #: the common case, >1 when transient failures were retried, and
        #: the exhausted budget for a quarantined job's failure.
        self.attempts = 1

    # ------------------------------------------------------------------ state
    def done(self) -> bool:
        """True once the future has resolved or failed (never blocks)."""
        return self._state != PENDING

    def failed(self) -> bool:
        """True when the job (or a dependency it was deferred on) failed."""
        return self._state == FAILED

    def result(self) -> "SimulationResult":
        """The simulation result, draining the owning runner if needed."""
        if self._state == PENDING:
            self._runner.drain()
        if self._state == FAILED:
            assert self._error is not None
            if self._worker_traceback:
                raise self._error from RuntimeError(
                    f"job failed in a sweep worker:\n{self._worker_traceback}"
                )
            raise self._error
        if self._state == PENDING:  # drain() returned without touching us
            raise SimulationError(
                f"future {self.label or id(self)} was not resolved by drain(); "
                f"it belongs to a different runner or its runner was discarded"
            )
        return self._value  # type: ignore[return-value]

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once the future settles (resolves *or* fails).

        Registered callbacks run synchronously inside the runner's drain
        loop, in registration order, immediately after the future settles;
        a future that is already done fires ``fn`` right away.  Exceptions
        raised by callbacks are swallowed — observers (the service layer's
        progress plumbing) must never be able to wedge a drain.
        """
        if self._state != PENDING:
            self._invoke_callback(fn)
            return
        self._callbacks.append(fn)

    def _invoke_callback(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # pragma: no cover - observer bugs must not wedge drains
            pass

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._invoke_callback(fn)

    def exception(self) -> Optional[BaseException]:
        """The job's exception (draining first), or None if it succeeded.

        Raises (same as :meth:`result`) when the drain cannot resolve this
        future at all — a still-pending future must not read as success.
        """
        if self._state == PENDING:
            self._runner.drain()
        if self._state == PENDING:
            raise SimulationError(
                f"future {self.label or id(self)} was not resolved by drain(); "
                f"it belongs to a different runner or its runner was discarded"
            )
        return self._error

    # ------------------------------------------- resolution (runner-internal)
    def _resolve(self, value: "SimulationResult") -> None:
        if self._state != PENDING:
            raise SimulationError("future resolved twice")
        self._state = RESOLVED
        self._value = value
        self._fire_callbacks()

    def _fail(
        self,
        error: BaseException,
        worker_traceback: Optional[str] = None,
        attempts: int = 1,
    ) -> None:
        if self._state != PENDING:
            raise SimulationError("future resolved twice")
        self._state = FAILED
        self._error = error
        self._worker_traceback = worker_traceback
        self.attempts = attempts
        self._fire_callbacks()

    def __repr__(self) -> str:
        label = f" {self.label!r}" if self.label else ""
        retries = f" attempts={self.attempts}" if self.attempts > 1 else ""
        return f"SimFuture({self._state}{label}{retries})"
