"""Simulation results.

A :class:`SimulationResult` carries everything the experiments need: total
energy broken down by structure, execution time, the average enabled size of
each L1 cache, and miss statistics.  Comparisons against a baseline (the
non-resizable cache of the same size and associativity) are provided as
methods so every experiment reports reductions the same way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.breakdown import EnergyBreakdown
from repro.metrics.edp import energy_delay_product, percent_reduction, slowdown


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated run."""

    workload: str
    core_kind: str
    instructions: int = 0
    cycles: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    l1d_label: str = "32K 2-way"
    l1i_label: str = "32K 2-way"
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    branch_mispredicts: int = 0

    #: instruction-weighted average enabled capacity of each L1, in bytes.
    average_l1d_capacity: float = 0.0
    average_l1i_capacity: float = 0.0
    #: full (physical) capacity of each L1, in bytes.
    full_l1d_capacity: int = 0
    full_l1i_capacity: int = 0

    l1d_resizes: int = 0
    l1i_resizes: int = 0
    l1d_flush_writebacks: int = 0
    l1i_flush_writebacks: int = 0

    #: Interval-sampling provenance (``sample_every`` == 1 means the run was
    #: exhaustive and the stderr fields are 0.0 by construction).  The
    #: stderrs are ratio-estimator standard errors over the measured
    #: intervals; multiply by 1.96 for the 95% bars (docs/SAMPLING.md).
    sample_every: int = 1
    sample_warmup: int = 0
    total_intervals: int = 0
    sampled_intervals: int = 0
    l1d_miss_ratio_stderr: float = 0.0
    l1i_miss_ratio_stderr: float = 0.0

    # ---------------------------------------------------------------- metrics
    @property
    def energy_delay(self) -> float:
        """Processor energy-delay product of the run."""
        return energy_delay_product(self.energy.total, self.cycles)

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1d_miss_ratio(self) -> float:
        """Data-cache miss ratio over the measured region."""
        if self.l1d_accesses == 0:
            return 0.0
        return self.l1d_misses / self.l1d_accesses

    @property
    def l1i_miss_ratio(self) -> float:
        """Instruction-cache miss ratio over the measured region."""
        if self.l1i_accesses == 0:
            return 0.0
        return self.l1i_misses / self.l1i_accesses

    @property
    def l1d_miss_ratio_error_bar(self) -> float:
        """Half-width of the 95% confidence interval on the d-miss ratio.

        Zero for exhaustive runs (``sample_every`` == 1) — the ratio is
        exact, there is no sampling error to bound.
        """
        return 1.96 * self.l1d_miss_ratio_stderr

    @property
    def l1i_miss_ratio_error_bar(self) -> float:
        """Half-width of the 95% confidence interval on the i-miss ratio."""
        return 1.96 * self.l1i_miss_ratio_stderr

    # ------------------------------------------------------------ comparisons
    def energy_delay_reduction(self, baseline: "SimulationResult") -> float:
        """Percentage reduction in processor energy-delay vs ``baseline``."""
        return percent_reduction(self.energy_delay, baseline.energy_delay)

    def slowdown_vs(self, baseline: "SimulationResult") -> float:
        """Fractional execution-time increase vs ``baseline``."""
        return slowdown(self.cycles, baseline.cycles)

    def l1d_size_reduction(self) -> float:
        """Percentage reduction in average d-cache size vs its full capacity."""
        if self.full_l1d_capacity <= 0:
            return 0.0
        return percent_reduction(self.average_l1d_capacity, float(self.full_l1d_capacity))

    def l1i_size_reduction(self) -> float:
        """Percentage reduction in average i-cache size vs its full capacity."""
        if self.full_l1i_capacity <= 0:
            return 0.0
        return percent_reduction(self.average_l1i_capacity, float(self.full_l1i_capacity))

    def combined_size_reduction(self) -> float:
        """Reduction of (d + i) average size vs the sum of their full capacities.

        This is the normalisation Figure 9 uses: "average cache size is
        normalized to the summation of base case d-cache and i-cache sizes".
        """
        full = float(self.full_l1d_capacity + self.full_l1i_capacity)
        if full <= 0:
            return 0.0
        enabled = self.average_l1d_capacity + self.average_l1i_capacity
        return percent_reduction(enabled, full)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Full, lossless export of the result (see :meth:`from_dict`).

        Floats survive the JSON round-trip bit-exactly (``repr`` round-trips
        Python floats), which is what lets the on-disk job cache hand back
        results identical to a fresh simulation.
        """
        return {
            "workload": self.workload,
            "core_kind": self.core_kind,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "energy": self.energy.as_dict(),  # from_dict ignores the derived total
            "l1d_label": self.l1d_label,
            "l1i_label": self.l1i_label,
            "l1d_accesses": self.l1d_accesses,
            "l1d_misses": self.l1d_misses,
            "l1i_accesses": self.l1i_accesses,
            "l1i_misses": self.l1i_misses,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "branch_mispredicts": self.branch_mispredicts,
            "average_l1d_capacity": self.average_l1d_capacity,
            "average_l1i_capacity": self.average_l1i_capacity,
            "full_l1d_capacity": self.full_l1d_capacity,
            "full_l1i_capacity": self.full_l1i_capacity,
            "l1d_resizes": self.l1d_resizes,
            "l1i_resizes": self.l1i_resizes,
            "l1d_flush_writebacks": self.l1d_flush_writebacks,
            "l1i_flush_writebacks": self.l1i_flush_writebacks,
            "sample_every": self.sample_every,
            "sample_warmup": self.sample_warmup,
            "total_intervals": self.total_intervals,
            "sampled_intervals": self.sampled_intervals,
            "l1d_miss_ratio_stderr": self.l1d_miss_ratio_stderr,
            "l1i_miss_ratio_stderr": self.l1i_miss_ratio_stderr,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result exported with :meth:`to_dict`."""
        energy = EnergyBreakdown.from_dict(payload["energy"])
        return cls(
            workload=payload["workload"],
            core_kind=payload["core_kind"],
            instructions=int(payload["instructions"]),
            cycles=float(payload["cycles"]),
            energy=energy,
            l1d_label=payload["l1d_label"],
            l1i_label=payload["l1i_label"],
            l1d_accesses=int(payload["l1d_accesses"]),
            l1d_misses=int(payload["l1d_misses"]),
            l1i_accesses=int(payload["l1i_accesses"]),
            l1i_misses=int(payload["l1i_misses"]),
            l2_accesses=int(payload["l2_accesses"]),
            l2_misses=int(payload["l2_misses"]),
            branch_mispredicts=int(payload["branch_mispredicts"]),
            average_l1d_capacity=float(payload["average_l1d_capacity"]),
            average_l1i_capacity=float(payload["average_l1i_capacity"]),
            full_l1d_capacity=int(payload["full_l1d_capacity"]),
            full_l1i_capacity=int(payload["full_l1i_capacity"]),
            l1d_resizes=int(payload["l1d_resizes"]),
            l1i_resizes=int(payload["l1i_resizes"]),
            l1d_flush_writebacks=int(payload["l1d_flush_writebacks"]),
            l1i_flush_writebacks=int(payload["l1i_flush_writebacks"]),
            # .get with defaults: results cached before sampling existed
            # deserialise as exhaustive runs, which is what they were.
            sample_every=int(payload.get("sample_every", 1)),
            sample_warmup=int(payload.get("sample_warmup", 0)),
            total_intervals=int(payload.get("total_intervals", 0)),
            sampled_intervals=int(payload.get("sampled_intervals", 0)),
            l1d_miss_ratio_stderr=float(payload.get("l1d_miss_ratio_stderr", 0.0)),
            l1i_miss_ratio_stderr=float(payload.get("l1i_miss_ratio_stderr", 0.0)),
        )

    def summary(self) -> dict:
        """Flat dictionary of the headline numbers (useful for reports/tests)."""
        return {
            "workload": self.workload,
            "core": self.core_kind,
            "l1d": self.l1d_label,
            "l1i": self.l1i_label,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "energy_total": self.energy.total,
            "energy_delay": self.energy_delay,
            "l1d_miss_ratio": self.l1d_miss_ratio,
            "l1i_miss_ratio": self.l1i_miss_ratio,
            "avg_l1d_capacity": self.average_l1d_capacity,
            "avg_l1i_capacity": self.average_l1i_capacity,
        }
