"""Optional NumPy shim for the vectorized pre-decode path.

The repo ships dependency-free: every simulation path must work on a bare
stdlib install.  NumPy, when importable, accelerates the one genuinely
array-shaped computation in the project — the configuration-invariant
pre-decode pass in :mod:`repro.sim.predecode` — but the stdlib builder
produces bit-identical output, so nothing anywhere may *require* it.

All NumPy access goes through :func:`numpy_or_none` so there is exactly one
import site to gate.  Setting ``REPRO_NO_NUMPY=1`` in the environment
disables the fast path even when NumPy is installed, which is how the
fallback tests and the CI matrix pin the stdlib builder deliberately.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: True when NumPy imported and the environment does not veto it.
HAVE_NUMPY = _numpy is not None and os.environ.get("REPRO_NO_NUMPY") != "1"


def numpy_or_none():
    """The ``numpy`` module when the fast path is enabled, else None.

    Re-reads ``REPRO_NO_NUMPY`` on every call so tests can flip the veto
    with ``monkeypatch.setenv`` without reloading modules.
    """
    if _numpy is None or os.environ.get("REPRO_NO_NUMPY") == "1":
        return None
    return _numpy
