"""On-disk memoisation of generated traces.

Trace generation is deterministic but not free — at paper scale (tens of
millions of instructions) it rivals the simulations themselves — so, like
completed jobs in :class:`repro.sim.jobcache.JobCache`, generated traces are
memoised on disk in the binary trace format
(:meth:`repro.workloads.trace.Trace.save`).  Entries are keyed by a content
fingerprint of the :class:`~repro.sim.runner.TraceSpec` (application,
instruction count, seed) mixed with the package source digest, so editing
any generator code invalidates every cached trace mechanically, exactly as
job fingerprints invalidate cached results.

Layout mirrors the job cache (sharded by the first two fingerprint digits)::

    <cache-dir>/
        ab/ab3f...e1.trace      # one generated trace, binary format
        c0/c04d...77.trace

Entries (both ``.trace`` and ``.decode``) are stored inside the checksummed
container from :mod:`repro.common.atomicio` — a magic, a SHA-256 digest,
then the payload.  Writes are atomic (temp file + ``os.replace``); reads
verify the digest and treat unreadable, truncated or checksum-failing
entries as *self-healing* misses: the corrupt file is counted
(:attr:`TraceCache.corrupt_entries`) and deleted, the trace regenerates,
and the rewrite restores the entry.  The cache is only ever a memo — every
failure path falls back to regenerating.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

from repro.common.atomicio import (
    CorruptPayloadError,
    atomic_write_bytes,
    unwrap_checksummed,
    wrap_checksummed,
)
from repro.common.errors import ReproError
from repro.sim import faults
from repro.workloads.trace import TRACE_FORMAT_VERSION, Trace

#: Bump when the key inputs or the entry layout change; entries written by
#: other versions simply miss (their keys differ).
#: v2: entries live inside the checksummed atomicio container.
TRACE_CACHE_VERSION = 2


class TraceCache:
    """A directory of generated traces keyed by trace-spec fingerprint."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Corrupt entries (trace or decoded) this cache object read and
        #: deleted; each also counted as a miss, so the payload regenerated.
        self.corrupt_entries = 0

    # ------------------------------------------------------------------- keys
    @staticmethod
    def key_for(spec) -> str:
        """Hex fingerprint of a trace spec.

        Accepts both :class:`~repro.sim.runner.TraceSpec` (synthetic traces,
        keyed by application/instructions/seed) and any spec exposing a
        ``trace_cache_payload()`` method — notably
        :class:`~repro.workloads.ingest.ExternalTraceSpec`, which keys on
        the source file's content digest plus the ingest version, so the
        cache stores *converted columns* and re-parses only when the file
        or the decoder changes.

        Mixes in the package source digest (the same one job fingerprints
        use), so a change to the generator — or anything else in the
        package — regenerates instead of serving a stale trace.
        """
        from repro.sim.runner import _source_digest  # deferred: runner imports us

        payload_for = getattr(spec, "trace_cache_payload", None)
        if payload_for is not None:
            identity = payload_for()
        else:
            identity = {
                "application": spec.application,
                "n_instructions": spec.n_instructions,
                "seed": spec.seed,
            }
        payload = json.dumps(
            {
                "version": TRACE_CACHE_VERSION,
                "trace_format": TRACE_FORMAT_VERSION,
                "source": _source_digest(),
                **identity,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.trace"

    # ----------------------------------------------------------------- access
    def _read_entry(self, path: Path) -> Optional[bytes]:
        """The verified payload at ``path``, or None (miss / self-heal)."""
        try:
            data = path.read_bytes()
        except OSError:
            return None  # no entry: a plain miss
        try:
            return unwrap_checksummed(data)
        except CorruptPayloadError:
            self.corrupt_entries += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write_entry(self, path: Path, payload: bytes) -> None:
        """Atomically land the checksummed container (or, under an injected
        ``trace_corrupt`` fault, a torn version of it)."""
        data = wrap_checksummed(payload)
        if faults.fire("trace_corrupt") is not None:
            data = faults.corrupt_bytes(data)
        atomic_write_bytes(path, data)

    def get(self, spec) -> Optional[Trace]:
        """The cached trace for ``spec``, or None on any kind of miss."""
        path = self._entry_path(self.key_for(spec))
        payload = self._read_entry(path)
        if payload is None:
            self.misses += 1
            return None
        try:
            trace = Trace.from_bytes(payload)
        except (ValueError, ReproError):
            # Checksum-valid but undecodable (e.g. written by a buggy
            # generator version): still a self-healing miss, never a crash.
            self.corrupt_entries += 1
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def put(self, spec, trace: Trace) -> None:
        """Persist ``trace`` under ``spec``'s key (atomically, best-effort).

        A write failure is swallowed: the trace in hand still reaches the
        caller, it simply is not memoised.
        """
        try:
            path = self._entry_path(self.key_for(spec))
            path.parent.mkdir(parents=True, exist_ok=True)
            self._write_entry(path, trace.to_bytes())
        except OSError:
            pass

    def __contains__(self, spec) -> bool:
        return self._entry_path(self.key_for(spec)).is_file()

    # ------------------------------------------------------- decoded streams
    def _decoded_path(self, trace_digest: str, block_mask: int) -> Path:
        from repro.sim.predecode import DECODE_VERSION  # deferred: cheap, avoids cycles

        payload = json.dumps(
            {
                "version": TRACE_CACHE_VERSION,
                "decode_version": DECODE_VERSION,
                "trace": trace_digest,
                "block_mask": block_mask,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self.directory / key[:2] / f"{key}.decode"

    def get_decoded(self, trace_digest: str, block_mask: int) -> Optional[bytes]:
        """The serialized pre-decode for (trace digest, block mask), or None.

        Stores :meth:`repro.sim.predecode.DecodedTrace.to_bytes` payloads —
        the configuration-invariant decode phase — so replays across
        processes and pool restarts skip re-deriving it.  Keys mix the
        trace's *content* digest with the decode version, so entries
        invalidate when either the trace bytes or the decode semantics
        change; the package source digest is deliberately not mixed in
        (the payload depends only on the trace and the decode layout).
        """
        return self._read_entry(self._decoded_path(trace_digest, block_mask))

    def put_decoded(self, trace_digest: str, block_mask: int, payload: bytes) -> None:
        """Persist a serialized pre-decode (atomically, best-effort)."""
        try:
            path = self._decoded_path(trace_digest, block_mask)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._write_entry(path, payload)
        except OSError:
            pass

    # ------------------------------------------------------------ maintenance
    def __len__(self) -> int:
        """Number of trace entries currently on disk."""
        try:
            shards = [shard for shard in self.directory.iterdir() if shard.is_dir()]
        except OSError:
            return 0
        return sum(1 for shard in shards for _ in shard.glob("*.trace"))

    def __repr__(self) -> str:
        return f"TraceCache({str(self.directory)!r})"
