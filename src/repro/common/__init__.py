"""Shared infrastructure: units, configuration, errors, statistics and RNG helpers.

The :mod:`repro.common` package contains the small building blocks every other
subpackage relies on.  Nothing in here knows about caches, processors or
energy models; it is deliberately limited to plain value types and utilities
so that the domain packages stay focused on the paper's concepts.
"""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    ResizingError,
    SimulationError,
    WorkloadError,
)
from repro.common.units import (
    KIB,
    MIB,
    format_size,
    is_power_of_two,
    log2_int,
    parse_size,
)
from repro.common.config import (
    CacheGeometry,
    CacheTiming,
    CoreConfig,
    CoreKind,
    L2Config,
    MemoryConfig,
    SystemConfig,
)
from repro.common.stats import Counter, RatioStat, RunningMean, StatGroup
from repro.common.rng import DeterministicRng

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ResizingError",
    "SimulationError",
    "WorkloadError",
    "KIB",
    "MIB",
    "parse_size",
    "format_size",
    "is_power_of_two",
    "log2_int",
    "CacheGeometry",
    "CacheTiming",
    "L2Config",
    "MemoryConfig",
    "CoreKind",
    "CoreConfig",
    "SystemConfig",
    "Counter",
    "RunningMean",
    "RatioStat",
    "StatGroup",
    "DeterministicRng",
]
