"""Configuration dataclasses describing the simulated system.

The defaults reproduce Table 2 of the paper (the "base system
configuration"): a 4-wide core with 64-entry ROB and 32-entry LSQ, 32 KB
2-way L1 instruction and data caches with 1 KB subarrays and 1-cycle hit
latency, a 512 KB 4-way unified L2 with 12-cycle latency, and a main memory
modelled as 80 cycles plus 5 cycles per 8 transferred bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.common.errors import ConfigurationError
from repro.common.units import KIB, format_size, is_power_of_two, log2_int, parse_size


@dataclass(frozen=True)
class CacheGeometry:
    """Physical geometry of a set-associative RAM-tag cache.

    Attributes:
        capacity_bytes: total data capacity of the cache in bytes.
        associativity: number of ways.
        block_bytes: cache block (line) size in bytes.
        subarray_bytes: size of one SRAM subarray.  Resizing enables and
            disables whole subarrays, so this sets the resizing granularity
            (the paper uses 1 KB subarrays for L1 caches).
    """

    capacity_bytes: int
    associativity: int
    block_bytes: int = 32
    subarray_bytes: int = KIB

    def __post_init__(self) -> None:
        capacity = parse_size(self.capacity_bytes)
        object.__setattr__(self, "capacity_bytes", capacity)
        if self.associativity < 1:
            raise ConfigurationError(
                f"associativity must be at least 1, got {self.associativity}"
            )
        if not is_power_of_two(self.block_bytes):
            raise ConfigurationError(
                f"block size must be a power of two, got {self.block_bytes}"
            )
        if not is_power_of_two(self.subarray_bytes):
            raise ConfigurationError(
                f"subarray size must be a power of two, got {self.subarray_bytes}"
            )
        if self.subarray_bytes < self.block_bytes:
            raise ConfigurationError(
                "subarray size must be at least one block: "
                f"{self.subarray_bytes} < {self.block_bytes}"
            )
        if capacity % (self.associativity * self.block_bytes) != 0:
            raise ConfigurationError(
                f"capacity {capacity} is not divisible by "
                f"associativity ({self.associativity}) x block ({self.block_bytes})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )
        if self.way_bytes % self.subarray_bytes != 0 and self.subarray_bytes % self.way_bytes != 0:
            raise ConfigurationError(
                "a cache way must be a whole number of subarrays (or vice versa): "
                f"way={self.way_bytes} subarray={self.subarray_bytes}"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets (capacity / (associativity * block))."""
        return self.capacity_bytes // (self.associativity * self.block_bytes)

    @property
    def way_bytes(self) -> int:
        """Capacity of a single way."""
        return self.capacity_bytes // self.associativity

    @property
    def blocks_per_subarray(self) -> int:
        """Number of blocks held by one subarray."""
        return max(1, self.subarray_bytes // self.block_bytes)

    @property
    def num_subarrays(self) -> int:
        """Total number of data subarrays in the cache."""
        return max(1, self.capacity_bytes // self.subarray_bytes)

    @property
    def subarrays_per_way(self) -> int:
        """Number of subarrays making up one way (at least 1)."""
        return max(1, self.way_bytes // self.subarray_bytes)

    @property
    def min_sets(self) -> int:
        """Smallest number of sets reachable by set resizing.

        Enabling/disabling happens in whole subarrays, so the minimum is one
        subarray per way (the paper makes the same observation in Section 2).
        """
        return max(1, self.subarray_bytes // self.block_bytes)

    @property
    def index_bits(self) -> int:
        """Number of index bits at full size."""
        return log2_int(self.num_sets)

    @property
    def offset_bits(self) -> int:
        """Number of block-offset bits."""
        return log2_int(self.block_bytes)

    def tag_bits(self, address_bits: int = 32) -> int:
        """Number of tag bits for a given physical address width."""
        return address_bits - self.index_bits - self.offset_bits

    def with_capacity(
        self, capacity_bytes: int, associativity: int | None = None
    ) -> "CacheGeometry":
        """Return a copy of this geometry with a different capacity/associativity."""
        return replace(
            self,
            capacity_bytes=capacity_bytes,
            associativity=self.associativity if associativity is None else associativity,
        )

    def describe(self) -> str:
        """Human readable one-liner, e.g. ``"32K 2-way (32B blocks, 1K subarrays)"``."""
        return (
            f"{format_size(self.capacity_bytes)} {self.associativity}-way "
            f"({self.block_bytes}B blocks, {format_size(self.subarray_bytes)} subarrays)"
        )


@dataclass(frozen=True)
class CacheTiming:
    """Access latencies of a cache level, in cycles."""

    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.hit_latency < 0:
            raise ConfigurationError(f"hit latency must be non-negative, got {self.hit_latency}")


@dataclass(frozen=True)
class L2Config:
    """Unified second-level cache configuration (Table 2: 512K 4-way, 12 cycles)."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            capacity_bytes=512 * KIB, associativity=4, block_bytes=64, subarray_bytes=4 * KIB
        )
    )
    hit_latency: int = 12

    def __post_init__(self) -> None:
        if self.hit_latency < 1:
            raise ConfigurationError(f"L2 hit latency must be positive, got {self.hit_latency}")


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory latency model (Table 2: 80 + 5 cycles per 8 bytes)."""

    base_latency: int = 80
    cycles_per_chunk: int = 5
    chunk_bytes: int = 8

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.cycles_per_chunk < 0:
            raise ConfigurationError("memory latencies must be non-negative")
        if self.chunk_bytes < 1:
            raise ConfigurationError("memory transfer chunk must be at least one byte")

    def access_latency(self, transfer_bytes: int) -> int:
        """Latency in cycles to transfer ``transfer_bytes`` from memory."""
        chunks = (transfer_bytes + self.chunk_bytes - 1) // self.chunk_bytes
        return self.base_latency + self.cycles_per_chunk * chunks


class CoreKind(str, Enum):
    """The two processor configurations studied in Section 4.2 of the paper."""

    #: In-order issue engine with a blocking data cache: every L1 miss is
    #: fully exposed on the execution critical path.
    IN_ORDER_BLOCKING = "in-order-blocking"

    #: Out-of-order issue engine with a non-blocking data cache: data-cache
    #: miss latency is largely hidden by instruction-level parallelism while
    #: instruction-cache misses remain exposed.
    OUT_OF_ORDER_NONBLOCKING = "out-of-order-nonblocking"


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters (Table 2 defaults).

    Attributes:
        kind: which of the two timing models to use.
        issue_width: instructions issued/decoded per cycle.
        rob_entries: reorder-buffer size (bounds memory-level parallelism).
        lsq_entries: load/store queue size.
        writeback_buffer_entries: number of outstanding writebacks.
        mshr_entries: number of outstanding misses for the non-blocking cache.
        branch_mispredict_penalty: cycles lost per mispredicted branch.
    """

    kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING
    issue_width: int = 4
    rob_entries: int = 64
    lsq_entries: int = 32
    writeback_buffer_entries: int = 8
    mshr_entries: int = 8
    branch_mispredict_penalty: int = 7

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigurationError("issue width must be at least 1")
        for name in ("rob_entries", "lsq_entries", "writeback_buffer_entries", "mshr_entries"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be at least 1")
        if self.branch_mispredict_penalty < 0:
            raise ConfigurationError("branch mispredict penalty must be non-negative")

    @property
    def is_out_of_order(self) -> bool:
        """True for the out-of-order, non-blocking configuration."""
        return self.kind is CoreKind.OUT_OF_ORDER_NONBLOCKING


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated-system configuration (Table 2 by default)."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(capacity_bytes=32 * KIB, associativity=2)
    )
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(capacity_bytes=32 * KIB, associativity=2)
    )
    l1_timing: CacheTiming = field(default_factory=CacheTiming)
    l2: L2Config = field(default_factory=L2Config)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    address_bits: int = 32

    def __post_init__(self) -> None:
        if self.address_bits < 16 or self.address_bits > 64:
            raise ConfigurationError(
                f"address width must be between 16 and 64 bits, got {self.address_bits}"
            )

    def with_l1(
        self, *, l1d: CacheGeometry | None = None, l1i: CacheGeometry | None = None
    ) -> "SystemConfig":
        """Return a copy with replacement L1 geometries."""
        return replace(
            self,
            l1d=self.l1d if l1d is None else l1d,
            l1i=self.l1i if l1i is None else l1i,
        )

    def with_core(self, core: CoreConfig) -> "SystemConfig":
        """Return a copy with a different core configuration."""
        return replace(self, core=core)

    def describe(self) -> str:
        """Multi-line description mirroring Table 2 of the paper."""
        lines = [
            f"Issue/decode width      {self.core.issue_width} instrs per cycle",
            f"Core model              {self.core.kind.value}",
            f"ROB / LSQ               {self.core.rob_entries} entries "
            f"/ {self.core.lsq_entries} entries",
            f"writeback buffer / mshr {self.core.writeback_buffer_entries} entries "
            f"/ {self.core.mshr_entries} entries",
            f"Base L1 i-cache         {self.l1i.describe()}; {self.l1_timing.hit_latency} cycle",
            f"Base L1 d-cache         {self.l1d.describe()}; {self.l1_timing.hit_latency} cycle",
            f"L2 unified cache        {self.l2.geometry.describe()}; {self.l2.hit_latency} cycles",
            f"Memory access latency   ({self.memory.base_latency} + {self.memory.cycles_per_chunk} "
            f"per {self.memory.chunk_bytes} bytes) cycles",
        ]
        return "\n".join(lines)
