"""Size units and small integer helpers used throughout the library.

Cache capacities in the paper are quoted in binary kilobytes ("32K" means
32 KiB).  This module provides parsing/formatting helpers plus the couple of
power-of-two utilities that cache index arithmetic needs.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError

#: One binary kilobyte (1024 bytes).
KIB = 1024

#: One binary megabyte (1024 * 1024 bytes).
MIB = 1024 * 1024

_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": KIB,
    "KB": KIB,
    "KIB": KIB,
    "M": MIB,
    "MB": MIB,
    "MIB": MIB,
}


def parse_size(value) -> int:
    """Parse a human-readable size into a number of bytes.

    Accepts plain integers (returned unchanged) and strings such as
    ``"32K"``, ``"512KB"``, ``"1M"`` or ``"4096"``.

    Raises:
        ConfigurationError: if the value cannot be interpreted as a size.
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"cannot interpret boolean {value!r} as a size")
    if isinstance(value, int):
        if value < 0:
            raise ConfigurationError(f"size must be non-negative, got {value}")
        return value
    if isinstance(value, float):
        if value < 0 or value != int(value):
            raise ConfigurationError(f"size must be a non-negative integer, got {value}")
        return int(value)
    if not isinstance(value, str):
        raise ConfigurationError(f"cannot interpret {value!r} as a size")

    text = value.strip().upper().replace(" ", "")
    digits = ""
    index = 0
    while index < len(text) and (text[index].isdigit() or text[index] == "."):
        digits += text[index]
        index += 1
    suffix = text[index:]
    if not digits or suffix not in _SUFFIXES:
        raise ConfigurationError(f"cannot interpret {value!r} as a size")
    quantity = float(digits)
    size = quantity * _SUFFIXES[suffix]
    if size != int(size):
        raise ConfigurationError(f"size {value!r} is not a whole number of bytes")
    return int(size)


def format_size(num_bytes: int) -> str:
    """Format a byte count the way the paper does (e.g. ``24576 -> "24K"``)."""
    if num_bytes < 0:
        raise ConfigurationError(f"size must be non-negative, got {num_bytes}")
    if num_bytes >= MIB and num_bytes % MIB == 0:
        return f"{num_bytes // MIB}M"
    if num_bytes >= KIB and num_bytes % KIB == 0:
        return f"{num_bytes // KIB}K"
    return f"{num_bytes}B"


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return log2 of a power-of-two integer.

    Raises:
        ConfigurationError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
