"""Lightweight statistics containers.

Simulation components record their activity in named counters grouped into
:class:`StatGroup` objects.  The containers are intentionally simple (plain
attribute access, explicit ``reset``) so they stay cheap on the simulator's
hot path.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.value = 0

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class RunningMean:
    """Accumulates a weighted running mean (e.g. average enabled cache size)."""

    __slots__ = ("name", "_total", "_weight")

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0.0
        self._weight = 0.0

    def add(self, value: float, weight: float = 1.0) -> None:
        """Add an observation with the given weight."""
        self._total += value * weight
        self._weight += weight

    @property
    def mean(self) -> float:
        """The weighted mean of all observations (0.0 if none recorded)."""
        if self._weight == 0.0:
            return 0.0
        return self._total / self._weight

    @property
    def weight(self) -> float:
        """Total weight accumulated so far."""
        return self._weight

    def reset(self) -> None:
        """Discard all observations."""
        self._total = 0.0
        self._weight = 0.0

    def __repr__(self) -> str:
        return f"RunningMean({self.name}={self.mean:.4g})"


class RatioStat:
    """A numerator/denominator pair, e.g. misses over accesses."""

    __slots__ = ("name", "numerator", "denominator")

    def __init__(self, name: str) -> None:
        self.name = name
        self.numerator = 0
        self.denominator = 0

    def record(self, hit_numerator: bool) -> None:
        """Record one event, counting it in the numerator when True."""
        self.denominator += 1
        if hit_numerator:
            self.numerator += 1

    @property
    def ratio(self) -> float:
        """numerator / denominator, or 0.0 when nothing was recorded."""
        if self.denominator == 0:
            return 0.0
        return self.numerator / self.denominator

    def reset(self) -> None:
        """Reset both counts to zero."""
        self.numerator = 0
        self.denominator = 0

    def __repr__(self) -> str:
        return f"RatioStat({self.name}={self.ratio:.4f})"


class StatGroup:
    """A named collection of statistics with dictionary-style export.

    Components create their counters once at construction time and then
    update them directly (attribute access) on the hot path; the group is
    only consulted when results are collected.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Create (or fetch) a named :class:`Counter` in this group."""
        return self._get_or_create(name, Counter)

    def running_mean(self, name: str) -> RunningMean:
        """Create (or fetch) a named :class:`RunningMean` in this group."""
        return self._get_or_create(name, RunningMean)

    def ratio(self, name: str) -> RatioStat:
        """Create (or fetch) a named :class:`RatioStat` in this group."""
        return self._get_or_create(name, RatioStat)

    def _get_or_create(self, name: str, factory):
        existing = self._stats.get(name)
        if existing is None:
            existing = factory(name)
            self._stats[name] = existing
        elif not isinstance(existing, factory):
            raise TypeError(
                f"statistic {name!r} already exists with type {type(existing).__name__}"
            )
        return existing

    def reset(self) -> None:
        """Reset every statistic in the group."""
        for stat in self._stats.values():
            stat.reset()

    def items(self) -> Iterator[Tuple[str, object]]:
        """Iterate over (name, statistic) pairs."""
        return iter(self._stats.items())

    def as_dict(self) -> Dict[str, float]:
        """Export all statistics as a flat ``name -> value`` mapping."""
        exported: Dict[str, float] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                exported[name] = stat.value
            elif isinstance(stat, RunningMean):
                exported[name] = stat.mean
            elif isinstance(stat, RatioStat):
                exported[name] = stat.ratio
            else:  # pragma: no cover - defensive
                exported[name] = float(stat)
        return exported

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __repr__(self) -> str:
        return f"StatGroup({self.name}, {len(self._stats)} stats)"
