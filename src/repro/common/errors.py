"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library problems without accidentally swallowing unrelated
exceptions.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent.

    Examples include a cache capacity that is not a multiple of the block
    size, an associativity of zero, or a subarray smaller than a block.
    """


class ResizingError(ReproError):
    """Raised when a resizing request cannot be honoured.

    Typical causes are asking an organization for a size it does not offer,
    or attempting to resize a cache to a configuration outside its resizing
    range.
    """


class WorkloadError(ReproError):
    """Raised when a workload profile or trace generator is misconfigured."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. empty workload)."""
