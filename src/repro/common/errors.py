"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library problems without accidentally swallowing unrelated
exceptions.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent.

    Examples include a cache capacity that is not a multiple of the block
    size, an associativity of zero, or a subarray smaller than a block.
    """


class ResizingError(ReproError):
    """Raised when a resizing request cannot be honoured.

    Typical causes are asking an organization for a size it does not offer,
    or attempting to resize a cache to a configuration outside its resizing
    range.
    """


class WorkloadError(ReproError):
    """Raised when a workload profile or trace generator is misconfigured."""


class TraceFormatError(WorkloadError):
    """Raised when an external trace file violates the documented format.

    Every parse failure of the external trace formats (see
    ``docs/TRACE_FORMAT.md`` and :mod:`repro.workloads.ingest`) raises this
    type — never a bare :class:`struct.error` or :class:`ValueError` — and
    carries enough position information to point at the offending input:

    Attributes:
        path: the file being parsed, when known.
        line: 1-based line number (text format).
        offset: absolute byte offset (binary format).
    """

    def __init__(self, message, path=None, line=None, offset=None):
        location = []
        if path is not None:
            location.append(str(path))
        if line is not None:
            location.append(f"line {line}")
        if offset is not None:
            location.append(f"byte offset {offset}")
        if location:
            message = f"{message} ({', '.join(location)})"
        super().__init__(message)
        self.path = path
        self.line = line
        self.offset = offset


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. empty workload)."""


class TransientJobError(SimulationError):
    """A job failure caused by the *execution environment*, not the job.

    The :class:`~repro.sim.runner.RetryPolicy` retries exactly this class
    (and its subclasses below): the failure is expected to clear on a fresh
    attempt because nothing about the job spec caused it.  Deterministic
    failures — a malformed spec, an unknown organization, an empty trace —
    stay plain :class:`SimulationError`\\ s and are never retried: they
    would fail identically every time.
    """


class WorkerCrashError(TransientJobError):
    """A pool worker died (segfault, OOM kill, SIGKILL) mid-job.

    Synthesized by the parent when a worker's process sentinel fires
    without a result; the job itself may be perfectly fine and is retried
    on a respawned worker.
    """


class JobTimeoutError(TransientJobError):
    """A job exceeded its per-job wall-clock budget and its worker was
    killed.  Retried (the hang may have been environmental); a job that
    times out on every attempt is quarantined."""


class TraceTransportError(TransientJobError):
    """The shared-memory trace transport failed with no fallback available
    (segment gone and the ref carries no spec).  A retry re-publishes the
    segment from the parent, so the next attempt can attach again."""


class ServiceError(ReproError):
    """Base class for errors the sweep service maps onto HTTP responses.

    Every request failure the server *intends* (a rejected payload, a full
    admission queue, an open circuit breaker) is one of these subclasses;
    anything else escaping a handler is a genuine bug and surfaces as a
    500.  The class carries the protocol mapping so the HTTP layer never
    hard-codes status codes per call site:

    Attributes:
        status: the HTTP status code this error renders as.
        code: a short machine-readable error identifier included in the
            JSON error body (stable across releases; messages are not).
        retry_after: seconds after which the client should retry, rendered
            as a ``Retry-After`` header when set (backpressure and breaker
            rejections always set it — a shed request is an invitation to
            come back, not a terminal failure).
    """

    status = 500
    code = "internal"

    def __init__(self, message: str, retry_after: "float | None" = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class InvalidRequestError(ServiceError):
    """The request body or parameters failed validation (HTTP 400)."""

    status = 400
    code = "invalid-request"


class UnknownHandleError(ServiceError):
    """The requested job handle is not (and was never) known (HTTP 404)."""

    status = 404
    code = "unknown-handle"


class AdmissionFullError(ServiceError):
    """The bounded admission queue is full; explicit backpressure (HTTP 429).

    Always carries ``retry_after`` — the server's estimate of when a slot
    will free up — so well-behaved clients back off instead of hammering.
    """

    status = 429
    code = "queue-full"


class CircuitOpenError(ServiceError):
    """The circuit breaker is shedding new work (HTTP 503).

    Opened when the recent transient-failure rate (worker deaths,
    quarantined jobs) spikes; new submissions are rejected until the
    cooldown elapses so the pool can recover instead of grinding through
    a failing backlog.
    """

    status = 503
    code = "circuit-open"


class ServiceDrainingError(ServiceError):
    """The server is draining for shutdown and admits no new work (HTTP 503).

    Already-issued handles keep resolving (from the cache after restart);
    only *new* submissions are refused.
    """

    status = 503
    code = "draining"


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before (or while) it executed (HTTP 504)."""

    status = 504
    code = "deadline-exceeded"
