"""Atomic, checksummed file writes shared by every on-disk artifact.

Three producers used to hand-roll the same write-temp-rename dance — the
job cache, the trace cache, and ad-hoc ``open(path, "w")`` writes for
``--output`` rows and the benchmark baseline (the last two were not atomic
at all, so a crash mid-write could leave a torn JSON file that later runs
would choke on).  This module is the single implementation:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` /
  :func:`atomic_write_json` — write to ``<name>.tmp.<pid>.<tid>`` in the
  target directory, then :func:`os.replace` onto the final name.  Readers
  therefore observe either the old content or the new content, never a
  prefix of the new one, even across concurrent sweep processes sharing a
  cache directory.  A killed process leaves at most an orphaned ``.tmp.*``
  file, which the caches' ``clear()`` sweeps away.
* :func:`wrap_checksummed` / :func:`unwrap_checksummed` — a tiny binary
  container (magic + SHA-256 + payload) for cache entries.  Rename
  atomicity protects against *torn* writes; the checksum additionally
  catches entries corrupted after the fact (bit rot, a crashed writer on a
  filesystem without rename atomicity, a fault-injection plan).  Readers
  treat a failed :func:`unwrap_checksummed` — raising
  :class:`CorruptPayloadError` — as a cache miss and self-heal by deleting
  the entry, never as a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Union

#: Container magic for checksummed payloads (bump on layout changes).
CHECKSUM_MAGIC = b"RCK1"

#: Bytes of SHA-256 digest stored after the magic.
_DIGEST_BYTES = 32


class CorruptPayloadError(ValueError):
    """A checksummed payload failed verification (torn write or bit rot).

    Deliberately a :class:`ValueError` subclass: every cache read path
    already treats ``ValueError`` as a miss, so callers that predate the
    checksum layer degrade safely.
    """


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target directory (rename must not cross
    filesystems) and carries the writer's pid *and* thread id, so
    concurrent writers — separate sweep processes sharing a cache dir, or
    two runners inside one process (a service next to a CLI sweep) —
    never collide on the temp name either.
    """
    path = Path(path)
    tmp = path.with_name(
        f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
    )
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        # Best effort: do not leave the temp file behind on a failed or
        # interrupted write (the final path is untouched either way).
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: Union[str, Path], payload, **dump_kwargs) -> None:
    """Serialize ``payload`` as JSON and write it to ``path`` atomically.

    ``dump_kwargs`` pass through to :func:`json.dumps` (``indent``,
    ``sort_keys``, ...).  Serialization happens before the file is opened,
    so an unserialisable payload never leaves a temp file behind.
    """
    atomic_write_text(path, json.dumps(payload, **dump_kwargs))


def wrap_checksummed(payload: bytes) -> bytes:
    """Frame ``payload`` with the container magic and its SHA-256 digest."""
    return CHECKSUM_MAGIC + hashlib.sha256(payload).digest() + payload


def unwrap_checksummed(data: bytes) -> bytes:
    """Verify a :func:`wrap_checksummed` container and return its payload.

    Raises :class:`CorruptPayloadError` on a bad magic, a truncated
    container, or a digest mismatch — the caller treats all three as a
    cache miss.
    """
    header = len(CHECKSUM_MAGIC) + _DIGEST_BYTES
    if len(data) < header or not data.startswith(CHECKSUM_MAGIC):
        raise CorruptPayloadError("payload is not a checksummed container")
    stored = data[len(CHECKSUM_MAGIC):header]
    payload = data[header:]
    if hashlib.sha256(payload).digest() != stored:
        raise CorruptPayloadError("payload checksum mismatch (torn write or corruption)")
    return payload
