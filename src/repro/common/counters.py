"""One counter registry for every layer that counts things.

The sweep engine grew ad-hoc counter dicts as it grew subsystems: the
runner aggregated worker-side deltas into a plain dict, the shared-memory
transport and the pre-decode memo each kept a module-level ``_STATS``
mapping, and ``--stats`` reporting reached into all of them with
hand-written format strings.  The service layer (``repro.service``) needs
the same numbers *plus* its own — accepted, shed, deduped, drained — and
must render them over ``GET /metrics``, so the counting moved behind one
small type instead of a fourth ad-hoc dict.

A :class:`CounterRegistry` is a ``dict`` subclass, deliberately: every
existing call site (``stats["key"] += 1``, ``stats.get(key, 0)``,
snapshot-and-diff loops, equality against plain dicts in tests) keeps
working unchanged, and pickling across the pool boundary costs the same
as the dict it replaces.  On top of the dict contract it adds the three
operations every layer re-implemented by hand:

* :meth:`inc` — bump a counter, creating it at zero first;
* :meth:`merge` — add another mapping's counts in (worker deltas, child
  registries);
* :meth:`render` — deterministic ``name value`` lines, one per counter,
  sorted — the exposition format ``GET /metrics`` serves and tests can
  assert against byte for byte.

Registries are plain per-process objects with no locking: each process
owns its own (exactly like the dicts they replaced), and cross-process
aggregation happens by shipping snapshots and merging in the parent.
"""

from __future__ import annotations

from typing import Mapping, Optional


class CounterRegistry(dict):
    """A named set of monotonic integer counters (a specialised dict)."""

    def __init__(self, initial: Optional[Mapping[str, int]] = None) -> None:
        super().__init__(initial or {})

    # ------------------------------------------------------------- mutation
    def inc(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to ``name`` (creating it at 0); returns the new value."""
        value = self.get(name, 0) + amount
        self[name] = value
        return value

    def merge(self, other: Mapping[str, int]) -> "CounterRegistry":
        """Add every counter of ``other`` into this registry; returns self."""
        for name, value in other.items():
            self[name] = self.get(name, 0) + value
        return self

    # ------------------------------------------------------------ reporting
    def snapshot(self) -> dict:
        """A plain-dict copy (safe to diff against a later state)."""
        return dict(self)

    def delta_since(self, before: Mapping[str, int]) -> dict:
        """Counters that changed since ``before``, as name -> difference."""
        return {
            name: self[name] - before.get(name, 0)
            for name in self
            if self[name] != before.get(name, 0)
        }

    def render(self, prefix: str = "") -> str:
        """Deterministic ``name value`` exposition lines, sorted by name.

        ``prefix`` is prepended to every counter name (``service_`` for the
        service's ``/metrics`` endpoint).  Non-integer values render via
        ``repr`` so floats round-trip exactly.
        """
        lines = []
        for name in sorted(self):
            value = self[name]
            rendered = repr(value) if isinstance(value, float) else str(value)
            lines.append(f"{prefix}{name} {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={self[name]}" for name in sorted(self))
        return f"CounterRegistry({inner})"


__all__ = ["CounterRegistry"]
