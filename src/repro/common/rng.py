"""Deterministic random number generation.

All stochastic behaviour in the library (synthetic address streams, random
replacement, etc.) goes through :class:`DeterministicRng` so that every
experiment is exactly reproducible from a seed.  The class wraps
``random.Random`` rather than numpy's generator because the hot loops draw
one value at a time and ``random.Random`` is faster for that usage pattern.
"""

from __future__ import annotations

import random
from typing import Sequence


class DeterministicRng:
    """A seeded random source with a few convenience draws.

    The generator is deliberately tiny: the workload generators need uniform
    integers, floats, choices and a geometric-ish burst length, nothing more.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, stream_id: int) -> "DeterministicRng":
        """Create an independent generator derived from this one.

        Forking lets a workload give each phase or each pattern its own
        stream so that changing one pattern does not perturb the others.
        """
        return DeterministicRng((self._seed * 1_000_003 + int(stream_id)) & 0x7FFFFFFF)

    def uniform(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def choice(self, options: Sequence):
        """Pick one element of a non-empty sequence uniformly at random."""
        return self._random.choice(options)

    def burst_length(self, mean: int) -> int:
        """Draw a burst length with the given mean (at least 1).

        Burst lengths follow a geometric distribution which matches the
        bursty reuse behaviour of the synthetic reference streams.
        """
        if mean <= 1:
            return 1
        p = 1.0 / float(mean)
        length = 1
        while self._random.random() > p and length < mean * 10:
            length += 1
        return length

    def shuffled(self, items: Sequence) -> list:
        """Return a new list containing ``items`` in random order."""
        shuffled = list(items)
        self._random.shuffle(shuffled)
        return shuffled
