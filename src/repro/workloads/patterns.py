"""Data-reference address patterns.

Two building blocks generate the data side of a synthetic stream:

* :class:`WorkingSetPattern` — references spread over a working set with a
  skewed (three-tier) popularity distribution, so the miss ratio falls to
  near zero once the cache covers the working set and climbs smoothly as the
  cache shrinks below it.  This is the knob that positions each
  application's "required cache size".
* :class:`ConflictGroupPattern` — a small group of blocks whose addresses
  are spaced 32 KiB apart, so they map to the *same* set in every cache
  configuration the experiments use.  Streams with a conflict group need the
  cache's associativity, not its capacity: selective-sets preserves their
  hit rate while shrinking, selective-ways does not — exactly the contrast
  Section 4.1 draws.
"""

from __future__ import annotations

from repro.common.errors import WorkloadError
from repro.common.rng import DeterministicRng

#: Spacing between conflict-group blocks.  32 KiB is a multiple of every
#: enabled way size the experiments ever use, so the group always collides
#: into a single set regardless of resizing.
CONFLICT_STRIDE = 32 * 1024


class WorkingSetPattern:
    """Skewed references over a contiguous working set.

    The working set is split into three tiers by address: a hot tier, a warm
    tier and a cold tier.  Each reference picks a tier with the configured
    probability and then a random block inside it; a small sequential-walk
    component models streaming through the data structure.
    """

    #: default (fraction of the working set, fraction of references) per tier
    #: for data streams.
    DATA_TIERS = ((0.10, 0.55), (0.30, 0.30), (0.60, 0.15))

    #: default tiers for instruction streams: code is more loop-dominated
    #: than data, so the hot tier is smaller and hotter.
    CODE_TIERS = ((0.08, 0.70), (0.25, 0.22), (0.67, 0.08))

    # Backwards-compatible alias used when no tiers are passed explicitly.
    TIERS = DATA_TIERS

    def __init__(
        self,
        base_address: int,
        working_set_bytes: int,
        block_bytes: int = 32,
        sequential_fraction: float = 0.10,
        tiers=None,
    ) -> None:
        if working_set_bytes < block_bytes:
            raise WorkloadError(
                f"working set ({working_set_bytes}) must be at least one block ({block_bytes})"
            )
        if not 0.0 <= sequential_fraction <= 1.0:
            raise WorkloadError(f"sequential fraction must be in [0, 1], got {sequential_fraction}")
        self.base_address = base_address
        self.working_set_bytes = working_set_bytes
        self.block_bytes = block_bytes
        self.sequential_fraction = sequential_fraction
        self.tiers = tuple(tiers) if tiers is not None else self.DATA_TIERS
        self._num_blocks = max(1, working_set_bytes // block_bytes)
        self._walk_position = 0

        # Pre-compute tier boundaries in blocks and the cumulative reference
        # probabilities used to pick a tier.
        self._tier_limits = []
        start = 0
        cumulative = 0.0
        for size_fraction, ref_fraction in self.tiers:
            span = max(1, int(self._num_blocks * size_fraction))
            end = min(self._num_blocks, start + span)
            cumulative += ref_fraction
            self._tier_limits.append((cumulative, start, max(start + 1, end)))
            start = end
        # Make sure the last tier reaches the end of the working set and the
        # cumulative probability covers 1.0 exactly.
        final_cumulative, final_start, _ = self._tier_limits[-1]
        self._tier_limits[-1] = (1.0, final_start, self._num_blocks)

    def next_address(self, rng: DeterministicRng) -> int:
        """Return the next reference address."""
        if rng.uniform() < self.sequential_fraction:
            block = self._walk_position
            self._walk_position = (self._walk_position + 1) % self._num_blocks
        else:
            draw = rng.uniform()
            block = 0
            for cumulative, start, end in self._tier_limits:
                if draw <= cumulative:
                    block = rng.randint(start, end - 1)
                    break
        offset = rng.randint(0, max(0, self.block_bytes // 4 - 1)) * 4
        return self.base_address + block * self.block_bytes + offset

    @property
    def num_blocks(self) -> int:
        """Number of distinct blocks the pattern can reference."""
        return self._num_blocks


class ConflictGroupPattern:
    """References over ``group_size`` blocks that all map to the same set.

    With ``burst_length == 1`` (the default) the group is cycled round-robin,
    the classic worst case for LRU: a cache whose associativity covers the
    whole group services every reference after the first touch, while every
    lost way turns the cycle into consecutive conflict misses.  This is the
    behaviour that makes such streams prefer selective-sets (which preserves
    associativity while shrinking) over selective-ways.

    With ``burst_length > 1`` references dwell on one member for a short
    random burst before moving to another, which softens the penalty of a
    lost way — useful for streams that should be only mildly
    associativity-sensitive.
    """

    def __init__(
        self,
        base_address: int,
        group_size: int,
        block_bytes: int = 32,
        burst_length: int = 1,
    ) -> None:
        if group_size < 1:
            raise WorkloadError(f"conflict group size must be at least 1, got {group_size}")
        if burst_length < 1:
            raise WorkloadError(f"burst length must be at least 1, got {burst_length}")
        self.base_address = base_address
        self.group_size = group_size
        self.block_bytes = block_bytes
        self.burst_length = burst_length
        self._position = 0
        self._remaining_in_burst = 0

    def next_address(self, rng: DeterministicRng) -> int:
        """Return the next conflicting reference address."""
        if self.burst_length == 1:
            self._position = (self._position + 1) % self.group_size
        else:
            if self._remaining_in_burst <= 0:
                if self.group_size > 1:
                    step = rng.randint(1, self.group_size - 1)
                    self._position = (self._position + step) % self.group_size
                self._remaining_in_burst = rng.burst_length(self.burst_length)
            self._remaining_in_burst -= 1
        address = self.base_address + self._position * CONFLICT_STRIDE
        offset = rng.randint(0, max(0, self.block_bytes // 4 - 1)) * 4
        return address + offset

    def addresses(self) -> list:
        """Block-aligned addresses of every member of the group."""
        return [self.base_address + index * CONFLICT_STRIDE for index in range(self.group_size)]
