"""Per-application workload profiles.

Each profile is a synthetic stand-in for one of the twelve SPEC95/SPEC2000
applications the paper evaluates.  The parameters are chosen to match the
qualitative behaviour the paper reports about that application — its data
and instruction working-set sizes, whether it relies on associativity
(conflict misses), and whether its working set is constant, varying or
periodic.  The docstring-style ``description`` of each profile cites the
observation from the paper that motivates it; EXPERIMENTS.md discusses how
faithful the substitution is.

Working-set sizes are expressed relative to the 32 KiB base L1 caches of
Table 2, since that is the geometry every experiment resizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.common.errors import WorkloadError
from repro.common.units import KIB
from repro.workloads.phases import PhaseSchedule, PhaseSpec


@dataclass(frozen=True)
class WorkloadProfile:
    """A complete synthetic application description.

    Attributes:
        name: SPEC benchmark name this profile substitutes for.
        description: the paper-reported behaviour the parameters encode.
        phases: the phase specifications (see :class:`PhaseSpec`).
        periodic: True when the phases repeat (periodic working-set
            variation); False when they occur once each, in order.
        period_instructions: length of one period when ``periodic``.
        mem_ref_fraction: fraction of instructions that access data memory.
        store_fraction: fraction of data references that are stores.
        branch_fraction: fraction of instructions that are branches.
        memory_level_parallelism: average number of independent outstanding
            misses the out-of-order core can overlap for this application.
        seed: RNG seed so every run of the profile is identical.
    """

    name: str
    description: str
    phases: Tuple[PhaseSpec, ...]
    periodic: bool = False
    period_instructions: int = 24_000
    mem_ref_fraction: float = 0.40
    store_fraction: float = 0.30
    branch_fraction: float = 0.18
    memory_level_parallelism: float = 2.0
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"profile {self.name!r} has no phases")
        for fraction_name in ("mem_ref_fraction", "store_fraction", "branch_fraction"):
            value = getattr(self, fraction_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{fraction_name} must be in [0, 1], got {value}")
        if self.memory_level_parallelism < 1.0:
            raise WorkloadError("memory-level parallelism must be at least 1.0")

    def schedule(self) -> PhaseSchedule:
        """Build the phase schedule for this profile."""
        return PhaseSchedule(
            self.phases, periodic=self.periodic, period_instructions=self.period_instructions
        )

    @property
    def is_multi_phase(self) -> bool:
        """True when the profile's working set changes during execution."""
        return len(self.phases) > 1

    @property
    def max_data_working_set(self) -> int:
        """Largest data working set across phases."""
        return max(phase.data_working_set for phase in self.phases)

    @property
    def max_code_footprint(self) -> int:
        """Largest code footprint across phases."""
        return max(phase.code_footprint for phase in self.phases)


def _single(name: str, **kwargs) -> Tuple[PhaseSpec, ...]:
    """Helper building a single-phase tuple."""
    return (PhaseSpec(name=name, **kwargs),)


_PROFILES: Dict[str, WorkloadProfile] = {}


def _register(profile: WorkloadProfile) -> WorkloadProfile:
    _PROFILES[profile.name] = profile
    return profile


# --------------------------------------------------------------------------
# SPEC2000 applications
# --------------------------------------------------------------------------

_register(
    WorkloadProfile(
        name="ammp",
        description=(
            "Requires small cache sizes: the paper lists ammp among the d-cache "
            "applications that 'require small cache sizes and take advantage of the "
            "smaller minimum size offered by selective-sets', and among the i-cache "
            "applications with small footprints and a constant size during execution."
        ),
        phases=_single(
            "steady",
            data_working_set=3 * KIB,
            code_footprint=4 * KIB,
        ),
        mem_ref_fraction=0.42,
        store_fraction=0.28,
        branch_fraction=0.12,
        memory_level_parallelism=2.5,
        seed=101,
    )
)

_register(
    WorkloadProfile(
        name="vortex",
        description=(
            "Needs associativity and shows working-set variation: vortex is listed among "
            "the d-cache applications that benefit from selective-sets' ability to "
            "maintain set-associativity, among the working-set-variation examples for "
            "dynamic d-cache resizing, and among the i-cache unavailable-size-emulation "
            "applications (moderate i-footprint)."
        ),
        phases=(
            PhaseSpec(
                name="build",
                weight=1.0,
                data_working_set=12 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=22 * KIB,
            ),
            PhaseSpec(
                name="lookup",
                weight=1.0,
                data_working_set=18 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=22 * KIB,
            ),
        ),
        mem_ref_fraction=0.44,
        store_fraction=0.34,
        branch_fraction=0.18,
        memory_level_parallelism=1.8,
        seed=102,
    )
)

_register(
    WorkloadProfile(
        name="vpr",
        description=(
            "Needs associativity in both caches and shows working-set variation: vpr is "
            "listed among the d-cache applications that benefit from maintaining "
            "set-associativity, among the working-set-variation examples, and among the "
            "i-cache applications that 'require set-associativity rather than cache size'."
        ),
        phases=(
            PhaseSpec(
                name="place",
                weight=1.2,
                data_working_set=10 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=18 * KIB,
                i_conflict_group_size=3,
                i_conflict_fraction=0.04,
            ),
            PhaseSpec(
                name="route",
                weight=1.0,
                data_working_set=18 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=18 * KIB,
                i_conflict_group_size=3,
                i_conflict_fraction=0.04,
            ),
        ),
        mem_ref_fraction=0.40,
        store_fraction=0.30,
        branch_fraction=0.20,
        memory_level_parallelism=1.6,
        seed=103,
    )
)

# --------------------------------------------------------------------------
# SPEC95 applications
# --------------------------------------------------------------------------

_register(
    WorkloadProfile(
        name="applu",
        description=(
            "Small, constant data working set (the paper groups applu with the d-cache "
            "applications requiring small sizes and with constant size during execution); "
            "its i-cache shows periodic working-set variation across solver sweeps.  The "
            "paper also notes that at equal sizes selective-ways dissipates less energy "
            "for applu because fewer ways are read per access."
        ),
        phases=(
            PhaseSpec(
                name="sweep-small",
                weight=1.0,
                data_working_set=3 * KIB + 512,
                code_footprint=6 * KIB,
            ),
            PhaseSpec(
                name="sweep-large",
                weight=1.0,
                data_working_set=3 * KIB + 512,
                code_footprint=14 * KIB,
            ),
        ),
        periodic=True,
        period_instructions=20_000,
        mem_ref_fraction=0.44,
        store_fraction=0.26,
        branch_fraction=0.10,
        memory_level_parallelism=3.5,
        seed=104,
    )
)

_register(
    WorkloadProfile(
        name="apsi",
        description=(
            "Relies on associativity and sits between offered sizes: apsi is listed among "
            "the d-cache applications that benefit from maintaining set-associativity, "
            "among the unavailable-size-emulation applications for dynamic d-cache "
            "resizing, and among the i-cache applications requiring set-associativity "
            "with periodic i-footprint variation."
        ),
        phases=(
            PhaseSpec(
                name="fft",
                weight=1.0,
                data_working_set=10 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=10 * KIB,
                i_conflict_group_size=3,
                i_conflict_fraction=0.04,
            ),
            PhaseSpec(
                name="advection",
                weight=1.0,
                data_working_set=12 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=18 * KIB,
                i_conflict_group_size=3,
                i_conflict_fraction=0.04,
            ),
        ),
        periodic=True,
        period_instructions=22_000,
        mem_ref_fraction=0.42,
        store_fraction=0.30,
        branch_fraction=0.12,
        memory_level_parallelism=2.8,
        seed=105,
    )
)

_register(
    WorkloadProfile(
        name="compress",
        description=(
            "Data working set between 16K and 32K with variation: the paper singles out "
            "compress as the application for which 'selective-ways shows better "
            "energy-delay reduction than selective-sets, because the application requires "
            "granularity at large cache sizes', lists it among the working-set-variation "
            "and unavailable-size-emulation d-cache applications, and gives it a small, "
            "constant i-cache footprint."
        ),
        phases=(
            PhaseSpec(
                name="compress-window",
                weight=1.4,
                data_working_set=22 * KIB,
                code_footprint=3 * KIB,
            ),
            PhaseSpec(
                name="io",
                weight=1.0,
                data_working_set=14 * KIB,
                code_footprint=3 * KIB,
            ),
        ),
        mem_ref_fraction=0.42,
        store_fraction=0.32,
        branch_fraction=0.17,
        memory_level_parallelism=1.6,
        seed=106,
    )
)

_register(
    WorkloadProfile(
        name="gcc",
        description=(
            "Data working set varies across compilation passes and benefits from "
            "associativity; the instruction working set is 'larger than 32K and "
            "downsizing incurs large performance degradation', so the i-cache never "
            "shrinks and behaves as an unavailable-size-emulation case for dynamic "
            "resizing."
        ),
        phases=(
            PhaseSpec(
                name="parse",
                weight=1.0,
                data_working_set=10 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=40 * KIB,
            ),
            PhaseSpec(
                name="optimize",
                weight=1.0,
                data_working_set=24 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=40 * KIB,
            ),
            PhaseSpec(
                name="emit",
                weight=0.8,
                data_working_set=14 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=40 * KIB,
            ),
        ),
        mem_ref_fraction=0.40,
        store_fraction=0.34,
        branch_fraction=0.20,
        memory_level_parallelism=1.5,
        seed=107,
    )
)

_register(
    WorkloadProfile(
        name="ijpeg",
        description=(
            "Needs associativity in the d-cache and a small, periodically varying i-cache "
            "footprint: ijpeg is listed among the d-cache applications that benefit from "
            "maintaining set-associativity, among the unavailable-size-emulation d-cache "
            "applications, and among the i-cache applications with small working sets; "
            "it shows the largest static-vs-dynamic average-size gap (38%) in both "
            "Figure 7(a) and Figure 8(b)."
        ),
        phases=(
            PhaseSpec(
                name="dct",
                weight=1.0,
                data_working_set=6 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=3 * KIB,
            ),
            PhaseSpec(
                name="huffman",
                weight=1.0,
                data_working_set=12 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=7 * KIB,
            ),
        ),
        periodic=True,
        period_instructions=18_000,
        mem_ref_fraction=0.38,
        store_fraction=0.30,
        branch_fraction=0.16,
        memory_level_parallelism=2.2,
        seed=108,
    )
)

_register(
    WorkloadProfile(
        name="m88ksim",
        description=(
            "Small, constant working sets on both sides: m88ksim is listed among the "
            "d-cache applications requiring small cache sizes, among the constant-size "
            "applications for dynamic resizing, and among the i-cache applications with "
            "small footprints."
        ),
        phases=_single(
            "simulate",
            data_working_set=3 * KIB,
            code_footprint=4 * KIB,
        ),
        mem_ref_fraction=0.38,
        store_fraction=0.28,
        branch_fraction=0.20,
        memory_level_parallelism=1.8,
        seed=109,
    )
)

_register(
    WorkloadProfile(
        name="su2cor",
        description=(
            "Periodic data working-set variation with conflict misses: the paper calls "
            "su2cor 'an example of periodic variation in working set size as execution "
            "phases repeat' and lists it among the d-cache applications that benefit from "
            "maintaining associativity; its i-cache footprint is constant and relies on "
            "associativity."
        ),
        phases=(
            PhaseSpec(
                name="update",
                weight=1.0,
                data_working_set=8 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=14 * KIB,
                i_conflict_group_size=3,
                i_conflict_fraction=0.04,
            ),
            PhaseSpec(
                name="measure",
                weight=1.0,
                data_working_set=20 * KIB,
                conflict_group_size=4,
                conflict_fraction=0.05,
                code_footprint=14 * KIB,
                i_conflict_group_size=3,
                i_conflict_fraction=0.04,
            ),
        ),
        periodic=True,
        period_instructions=26_000,
        mem_ref_fraction=0.44,
        store_fraction=0.26,
        branch_fraction=0.10,
        memory_level_parallelism=3.0,
        seed=110,
    )
)

_register(
    WorkloadProfile(
        name="swim",
        description=(
            "Streaming data working set larger than the 32K L1: the paper reports that "
            "for swim 'downsizing creates a large amount of misses and large performance "
            "degradation, resulting in no downsizing for both organizations', while its "
            "i-cache footprint is small and constant."
        ),
        phases=_single(
            "stencil",
            data_working_set=44 * KIB,
            data_sequential_fraction=0.18,
            code_footprint=3 * KIB,
        ),
        mem_ref_fraction=0.46,
        store_fraction=0.30,
        branch_fraction=0.08,
        memory_level_parallelism=4.0,
        seed=111,
    )
)

_register(
    WorkloadProfile(
        name="tomcatv",
        description=(
            "Moderate data working set whose conflicts punish lower associativity (the "
            "paper notes tomcatv 'reduces the cache size equally for both [organizations], "
            "but incurs larger performance impact with selective-ways due to more conflict "
            "misses'); the instruction working set is larger than 32K so the i-cache does "
            "not downsize."
        ),
        phases=_single(
            "mesh",
            data_working_set=16 * KIB,
            conflict_group_size=3,
            conflict_fraction=0.06,
            code_footprint=38 * KIB,
        ),
        mem_ref_fraction=0.46,
        store_fraction=0.28,
        branch_fraction=0.08,
        memory_level_parallelism=3.5,
        seed=112,
    )
)

#: The twelve applications in the order the paper's figures list them.
SPEC_APPLICATION_NAMES: Tuple[str, ...] = (
    "ammp",
    "applu",
    "apsi",
    "compress",
    "gcc",
    "ijpeg",
    "m88ksim",
    "su2cor",
    "swim",
    "tomcatv",
    "vortex",
    "vpr",
)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by SPEC benchmark name."""
    try:
        return _PROFILES[name]
    except KeyError as exc:
        known = ", ".join(sorted(_PROFILES))
        raise WorkloadError(f"unknown workload {name!r}; known workloads: {known}") from exc


def iter_profiles() -> Iterator[WorkloadProfile]:
    """Iterate over all twelve profiles in the paper's figure order."""
    for name in SPEC_APPLICATION_NAMES:
        yield _PROFILES[name]
