"""Columnar (structure-of-arrays) trace storage.

A trace is the unit the simulator consumes: a sequence of per-instruction
records plus the workload-level metadata (memory-level parallelism) the
out-of-order timing model needs.  Traces are independent of any cache
configuration, so one materialised trace is reused across every candidate
configuration of a profiling sweep — that is what makes the design-space
sweeps in :mod:`repro.experiments` affordable.

Storage layout
--------------

Instead of one Python object per instruction, a :class:`Trace` holds three
parallel columns in compact :mod:`array` buffers:

=================  ========  =================================================
column             typecode  contents
=================  ========  =================================================
``pc``             ``Q``     byte address of each instruction
``data_address``   ``Q``     byte address of the load/store (0 when none)
``flags``          ``B``     :data:`FLAG_MEM` / :data:`FLAG_STORE` /
                             :data:`FLAG_BRANCH` / :data:`FLAG_TAKEN` bits
=================  ========  =================================================

A 60k-instruction trace is therefore ~1 MB of flat buffers rather than
hundreds of thousands of boxed ints and tuples, :meth:`Trace.slice` is a
zero-copy window (``memoryview``) onto the parent's buffers, content
digests hash the raw bytes, and the whole trace round-trips through a small
binary file format (:meth:`Trace.save` / :meth:`Trace.load`) so generated
traces can be memoised on disk like simulation results.

The row-oriented view is still available for compatibility: iterating a
trace (or its :attr:`Trace.records` sequence view) yields
:class:`InstructionRecord` tuples materialised on the fly, and the
constructor accepts any iterable of records.  The simulator's fast path
(:class:`repro.sim.engine.ColumnarEngine`) bypasses the view and replays
straight from the columns.
"""

from __future__ import annotations

import hashlib
import io
import struct
import sys
from array import array
from typing import BinaryIO, Iterable, Iterator, NamedTuple, Optional, Union

from repro.common.errors import WorkloadError

#: Flag bits of the ``flags`` column (one byte per instruction).
FLAG_MEM = 0x1  #: the instruction carries a data access (load or store)
FLAG_STORE = 0x2  #: the data access is a store
FLAG_BRANCH = 0x4  #: the instruction is a conditional branch or jump
FLAG_TAKEN = 0x8  #: branch outcome (meaningful only with FLAG_BRANCH)

#: Array typecodes of the three columns.
PC_TYPECODE = "Q"
ADDRESS_TYPECODE = "Q"
FLAG_TYPECODE = "B"

#: A column is either an owning buffer or a zero-copy window onto one.
Column = Union[array, memoryview]

#: Binary trace file format (see :meth:`Trace.save`).
TRACE_MAGIC = b"RTRC"
TRACE_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHcdQI")  # magic, version, byteorder, mlp, count, name length


class InstructionRecord(NamedTuple):
    """One dynamic instruction (the row-oriented compatibility view).

    Attributes:
        pc: byte address of the instruction.
        data_address: byte address of the load/store, or None for non-memory
            instructions.
        is_store: True when the data access is a store.
        is_branch: True when the instruction is a conditional branch or jump.
        taken: branch outcome (meaningful only when ``is_branch``).
    """

    pc: int
    data_address: Optional[int]
    is_store: bool
    is_branch: bool
    taken: bool

    def flags(self) -> int:
        """This record's flag bits as stored in the trace's flag column."""
        flags = 0
        if self.data_address is not None:
            flags |= FLAG_MEM
        if self.is_store:
            flags |= FLAG_STORE
        if self.is_branch:
            flags |= FLAG_BRANCH
        if self.taken:
            flags |= FLAG_TAKEN
        return flags


def _record_from_columns(pc: int, address: int, flags: int) -> InstructionRecord:
    """Materialise one row of the columns as an :class:`InstructionRecord`."""
    return InstructionRecord(
        pc,
        address if flags & FLAG_MEM else None,
        bool(flags & FLAG_STORE),
        bool(flags & FLAG_BRANCH),
        bool(flags & FLAG_TAKEN),
    )


class TraceRecords:
    """Read-only sequence view that materialises :class:`InstructionRecord` rows.

    Kept deliberately cheap: indexing or iterating builds records on demand
    from the parent trace's columns; equality between two views compares the
    underlying column bytes (fast path) instead of boxing every row.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def __getitem__(self, index):
        trace = self._trace
        if isinstance(index, slice):
            rng = range(*index.indices(len(trace)))
            pcs, addresses, flags = trace.columns()
            return [
                _record_from_columns(pcs[i], addresses[i], flags[i]) for i in rng
            ]
        if index < 0:
            index += len(trace)
        if not 0 <= index < len(trace):
            raise IndexError("trace record index out of range")
        pcs, addresses, flags = trace.columns()
        return _record_from_columns(pcs[index], addresses[index], flags[index])

    def __iter__(self) -> Iterator[InstructionRecord]:
        pcs, addresses, flags = self._trace.columns()
        for pc, address, flag in zip(pcs, addresses, flags):
            yield _record_from_columns(pc, address, flag)

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceRecords):
            mine, theirs = self._trace, other._trace
            if mine is theirs:
                return True
            return all(
                a.tobytes() == b.tobytes()
                for a, b in zip(mine.columns(), theirs.columns())
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"TraceRecords({self._trace.name}, {len(self)} records)"


class Trace:
    """A materialised instruction trace with workload metadata."""

    __slots__ = ("name", "memory_level_parallelism", "_pc", "_address", "_flags",
                 "_memory_references", "_branches", "__weakref__")

    def __init__(
        self,
        name: str,
        records: Iterable[InstructionRecord] = (),
        memory_level_parallelism: float = 1.0,
    ) -> None:
        self.name = name
        self.memory_level_parallelism = memory_level_parallelism
        pcs = array(PC_TYPECODE)
        addresses = array(ADDRESS_TYPECODE)
        flags = array(FLAG_TYPECODE)
        pc_append, address_append, flag_append = pcs.append, addresses.append, flags.append
        for record in records:
            pc, data_address, is_store, is_branch, taken = record
            bits = 0
            address = 0
            if data_address is not None:
                bits = FLAG_MEM
                address = data_address
            if is_store:
                bits |= FLAG_STORE
            if is_branch:
                bits |= FLAG_BRANCH
            if taken:
                bits |= FLAG_TAKEN
            pc_append(pc)
            address_append(address)
            flag_append(bits)
        self._pc: Column = pcs
        self._address: Column = addresses
        self._flags: Column = flags
        self._memory_references: Optional[int] = None
        self._branches: Optional[int] = None

    # ------------------------------------------------------------ construction
    @classmethod
    def from_records(
        cls, name: str, records: Iterable[InstructionRecord], memory_level_parallelism: float = 1.0
    ) -> "Trace":
        """Build a trace from any iterable of records."""
        return cls(name, records, memory_level_parallelism)

    @classmethod
    def from_columns(
        cls,
        name: str,
        pcs: Column,
        addresses: Column,
        flags: Column,
        memory_level_parallelism: float = 1.0,
    ) -> "Trace":
        """Adopt pre-built columns without copying.

        ``pcs`` and ``addresses`` must be ``array('Q')`` buffers (or
        memoryviews of such buffers), ``flags`` an ``array('B')``, and all
        three the same length.  The columns are adopted by reference — the
        caller must not mutate them afterwards (traces are immutable once
        built, the same assumption the simulator and the job fingerprints
        make).
        """
        lengths = {len(pcs), len(addresses), len(flags)}
        if len(lengths) > 1:
            raise WorkloadError(
                f"trace columns disagree on length: pc={len(pcs)}, "
                f"address={len(addresses)}, flags={len(flags)}"
            )
        for column, typecode, label in (
            (pcs, PC_TYPECODE, "pc"),
            (addresses, ADDRESS_TYPECODE, "data_address"),
            (flags, FLAG_TYPECODE, "flags"),
        ):
            if isinstance(column, array):
                ok = column.typecode == typecode
            elif isinstance(column, memoryview):
                ok = column.format == typecode
            else:
                ok = False
            if not ok:
                raise WorkloadError(
                    f"trace column {label!r} must be an array('{typecode}') or a "
                    f"memoryview of one, got {type(column).__name__}"
                )
        trace = cls.__new__(cls)
        trace.name = name
        trace.memory_level_parallelism = memory_level_parallelism
        trace._pc = pcs
        trace._address = addresses
        trace._flags = flags
        trace._memory_references = None
        trace._branches = None
        return trace

    # ----------------------------------------------------------------- columns
    def columns(self):
        """The (pc, data_address, flags) columns, in that order.

        Returned objects are the trace's own buffers (arrays, or memoryviews
        for sliced traces); treat them as read-only.
        """
        return self._pc, self._address, self._flags

    def column_bytes(self):
        """Raw (native-endian) bytes of the (pc, data_address, flags) columns."""
        return (
            self._pc.tobytes(),
            self._address.tobytes(),
            self._flags.tobytes(),
        )

    @property
    def nbytes(self) -> int:
        """Total size of the three column buffers in bytes (17 per row).

        This is the payload a pickled trace ships across a process
        boundary (plus a ~fixed header), and the size of the shared-memory
        segment the zero-copy transport publishes instead.
        """
        return (
            len(self._pc) * self._pc.itemsize
            + len(self._address) * self._address.itemsize
            + len(self._flags) * self._flags.itemsize
        )

    # ------------------------------------------------------------ sequence API
    def __len__(self) -> int:
        return len(self._pc)

    def __iter__(self) -> Iterator[InstructionRecord]:
        return iter(self.records)

    @property
    def records(self) -> TraceRecords:
        """Row-oriented view of the trace (yields :class:`InstructionRecord`)."""
        return TraceRecords(self)

    # ------------------------------------------------------- cached statistics
    @property
    def memory_references(self) -> int:
        """Number of instructions that carry a data access (cached)."""
        if self._memory_references is None:
            self._memory_references = sum(
                1 for flag in self._flags if flag & FLAG_MEM
            )
        return self._memory_references

    @property
    def branches(self) -> int:
        """Number of branch instructions in the trace (cached)."""
        if self._branches is None:
            self._branches = sum(1 for flag in self._flags if flag & FLAG_BRANCH)
        return self._branches

    # ------------------------------------------------------------------ slicing
    def slice(self, start: int, stop: int) -> "Trace":
        """Return a zero-copy sub-trace covering rows ``[start:stop]``.

        The sub-trace shares the parent's buffers through memoryviews, so
        slicing a million-instruction trace costs O(1) regardless of the
        window size (and keeps the parent's buffers alive).
        """
        return Trace.from_columns(
            name=f"{self.name}[{start}:{stop}]",
            pcs=memoryview(self._pc)[start:stop],
            addresses=memoryview(self._address)[start:stop],
            flags=memoryview(self._flags)[start:stop],
            memory_level_parallelism=self.memory_level_parallelism,
        )

    # --------------------------------------------------------------- fingerprint
    def content_digest(self) -> str:
        """Hex SHA-256 over the trace's identity: name, MLP and raw columns.

        Used by the sweep engine to fingerprint inline traces; hashing the
        flat buffers is two orders of magnitude cheaper than hashing one
        repr per record.
        """
        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        digest.update(repr(self.memory_level_parallelism).encode("ascii"))
        for chunk in self.column_bytes():
            digest.update(chunk)
        return digest.hexdigest()

    # ------------------------------------------------------------- binary format
    def save(self, path_or_file: Union[str, "BinaryIO"]) -> None:
        """Write the trace to ``path_or_file`` in the binary trace format.

        Layout: a fixed little-endian header (magic, format version, host
        byte order, MLP, instruction count, name length) followed by the
        UTF-8 name and the three raw column buffers back to back.  Column
        bytes are written in host byte order; :meth:`load` byte-swaps when
        reading a foreign-endian file, so the format is portable.
        """
        if isinstance(path_or_file, (str, bytes)) or hasattr(path_or_file, "__fspath__"):
            with open(path_or_file, "wb") as handle:
                self._write(handle)
        else:
            self._write(path_or_file)

    def _write(self, handle: "BinaryIO") -> None:
        name_bytes = self.name.encode("utf-8")
        handle.write(
            _HEADER.pack(
                TRACE_MAGIC,
                TRACE_FORMAT_VERSION,
                b"<" if sys.byteorder == "little" else b">",
                self.memory_level_parallelism,
                len(self),
                len(name_bytes),
            )
        )
        handle.write(name_bytes)
        for chunk in self.column_bytes():
            handle.write(chunk)

    @classmethod
    def load(cls, path_or_file: Union[str, "BinaryIO"]) -> "Trace":
        """Read a trace written by :meth:`save`.

        Raises :class:`~repro.common.errors.WorkloadError` on a foreign,
        truncated or corrupt file — callers memoising traces on disk treat
        that as a cache miss and regenerate.
        """
        if isinstance(path_or_file, (str, bytes)) or hasattr(path_or_file, "__fspath__"):
            with open(path_or_file, "rb") as handle:
                return cls._read(handle)
        return cls._read(path_or_file)

    @classmethod
    def _read(cls, handle: "BinaryIO") -> "Trace":
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise WorkloadError("truncated trace file (short header)")
        magic, version, byteorder, mlp, count, name_length = _HEADER.unpack(header)
        if magic != TRACE_MAGIC:
            raise WorkloadError(f"not a trace file (bad magic {magic!r})")
        if version != TRACE_FORMAT_VERSION:
            raise WorkloadError(
                f"unsupported trace format version {version} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )
        name_bytes = handle.read(name_length)
        if len(name_bytes) != name_length:
            raise WorkloadError("truncated trace file (short name)")
        try:
            name = name_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WorkloadError(f"corrupt trace file (undecodable name): {exc}") from exc
        foreign_order = byteorder != (b"<" if sys.byteorder == "little" else b">")

        def read_column(typecode: str) -> array:
            column = array(typecode)
            expected = count * column.itemsize
            payload = handle.read(expected)
            if len(payload) != expected:
                raise WorkloadError("truncated trace file (short column)")
            column.frombytes(payload)
            if foreign_order and column.itemsize > 1:
                column.byteswap()
            return column

        pcs = read_column(PC_TYPECODE)
        addresses = read_column(ADDRESS_TYPECODE)
        flags = read_column(FLAG_TYPECODE)
        if handle.read(1):
            raise WorkloadError("corrupt trace file (trailing bytes)")
        return cls.from_columns(
            name=name,
            pcs=pcs,
            addresses=addresses,
            flags=flags,
            memory_level_parallelism=mlp,
        )

    def to_bytes(self) -> bytes:
        """The trace serialised in the binary trace format."""
        buffer = io.BytesIO()
        self._write(buffer)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Trace":
        """Deserialise a trace produced by :meth:`to_bytes`."""
        return cls._read(io.BytesIO(payload))

    # ------------------------------------------------------------------ pickling
    def __getstate__(self):
        # Memoryview windows are not picklable; serialising through the
        # binary format both fixes that and compacts a sliced trace into
        # owning buffers on the other side.
        return {"payload": self.to_bytes()}

    def __setstate__(self, state) -> None:
        other = Trace.from_bytes(state["payload"])
        self.name = other.name
        self.memory_level_parallelism = other.memory_level_parallelism
        self._pc = other._pc
        self._address = other._address
        self._flags = other._flags
        self._memory_references = None
        self._branches = None

    def __repr__(self) -> str:
        return f"Trace({self.name}, {len(self)} instructions)"
