"""Trace record types.

A trace is the unit the simulator consumes: a sequence of per-instruction
records plus the workload-level metadata (memory-level parallelism) the
out-of-order timing model needs.  Traces are independent of any cache
configuration, so one materialised trace is reused across every candidate
configuration of a profiling sweep — that is what makes the design-space
sweeps in :mod:`repro.experiments` affordable.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional


class InstructionRecord(NamedTuple):
    """One dynamic instruction.

    Attributes:
        pc: byte address of the instruction.
        data_address: byte address of the load/store, or None for non-memory
            instructions.
        is_store: True when the data access is a store.
        is_branch: True when the instruction is a conditional branch or jump.
        taken: branch outcome (meaningful only when ``is_branch``).
    """

    pc: int
    data_address: Optional[int]
    is_store: bool
    is_branch: bool
    taken: bool


class Trace:
    """A materialised instruction trace with workload metadata."""

    def __init__(
        self,
        name: str,
        records: List[InstructionRecord],
        memory_level_parallelism: float = 1.0,
    ) -> None:
        self.name = name
        self.records = records
        self.memory_level_parallelism = memory_level_parallelism

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def memory_references(self) -> int:
        """Number of instructions that carry a data access."""
        return sum(1 for record in self.records if record.data_address is not None)

    @property
    def branches(self) -> int:
        """Number of branch instructions in the trace."""
        return sum(1 for record in self.records if record.is_branch)

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace covering ``records[start:stop]``."""
        return Trace(
            name=f"{self.name}[{start}:{stop}]",
            records=self.records[start:stop],
            memory_level_parallelism=self.memory_level_parallelism,
        )

    @classmethod
    def from_records(
        cls, name: str, records: Iterable[InstructionRecord], memory_level_parallelism: float = 1.0
    ) -> "Trace":
        """Build a trace from any iterable of records."""
        return cls(name, list(records), memory_level_parallelism)

    def __repr__(self) -> str:
        return f"Trace({self.name}, {len(self.records)} instructions)"
