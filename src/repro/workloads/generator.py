"""Synthetic trace generation.

:class:`WorkloadGenerator` turns a :class:`repro.workloads.profiles.WorkloadProfile`
into a :class:`repro.workloads.trace.Trace`.  The generated stream is
completely determined by the profile and the seed, and — crucially — is
independent of any cache configuration, so one trace can be replayed against
every candidate configuration of a profiling sweep.

Generation appends straight into the trace's columnar ``array`` buffers
(program counters, data addresses, flag bytes) instead of materialising one
:class:`~repro.workloads.trace.InstructionRecord` per instruction; at
multi-million-instruction trace lengths that removes the dominant
allocation cost of trace generation while producing byte-identical
content — the RNG consumption order is unchanged.

Address-space layout (all regions disjoint):

===============  ==================  ========================================
region           base address        used for
===============  ==================  ========================================
code             0x0040_0000         sequential/loop instruction fetch
code conflicts   0x00c0_0000         i-side conflict group (32 KiB strides)
data             0x1000_0000         per-phase data working sets
data conflicts   0x4000_0000         d-side conflict group (32 KiB strides)
===============  ==================  ========================================
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.common.rng import DeterministicRng
from repro.workloads.patterns import ConflictGroupPattern, WorkingSetPattern
from repro.workloads.phases import PhaseSpec
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import (
    ADDRESS_TYPECODE,
    FLAG_BRANCH,
    FLAG_MEM,
    FLAG_STORE,
    FLAG_TAKEN,
    FLAG_TYPECODE,
    PC_TYPECODE,
    Trace,
)

CODE_BASE = 0x0040_0000
CODE_CONFLICT_BASE = 0x00C0_0000
DATA_BASE = 0x1000_0000
DATA_CONFLICT_BASE = 0x4000_0000

_BLOCK_BYTES = 32
_BLOCK_MASK = ~(_BLOCK_BYTES - 1)


def _branch_bias(pc: int) -> float:
    """Per-static-branch taken probability, derived deterministically from the PC.

    Most static branches are strongly biased (loop back-edges, error checks),
    a minority are weakly biased; this keeps the bimodal predictor's
    misprediction ratio in a realistic few-percent range instead of the ~50 %
    that independently random outcomes would produce.
    """
    bucket = (pc >> 2) * 2654435761 & 0xFF
    if bucket < 112:
        return 0.97
    if bucket < 224:
        return 0.03
    return 0.60


class _PhaseState:
    """Per-phase pattern generators, kept alive for the duration of a segment."""

    def __init__(self, phase: PhaseSpec, rng: DeterministicRng) -> None:
        self.phase = phase
        self.data_pattern = WorkingSetPattern(
            base_address=DATA_BASE,
            working_set_bytes=phase.data_working_set,
            block_bytes=_BLOCK_BYTES,
            sequential_fraction=phase.data_sequential_fraction,
        )
        self.code_pattern = WorkingSetPattern(
            base_address=CODE_BASE,
            working_set_bytes=phase.code_footprint,
            block_bytes=_BLOCK_BYTES,
            sequential_fraction=0.35,
            tiers=WorkingSetPattern.CODE_TIERS,
        )
        self.data_conflicts: Optional[ConflictGroupPattern] = None
        if phase.conflict_group_size > 0:
            self.data_conflicts = ConflictGroupPattern(
                DATA_CONFLICT_BASE,
                phase.conflict_group_size,
                _BLOCK_BYTES,
                burst_length=phase.conflict_burst_length,
            )
        self.code_conflicts: Optional[ConflictGroupPattern] = None
        if phase.i_conflict_group_size > 0:
            self.code_conflicts = ConflictGroupPattern(
                CODE_CONFLICT_BASE,
                phase.i_conflict_group_size,
                _BLOCK_BYTES,
                burst_length=phase.i_conflict_burst_length,
            )


class WorkloadGenerator:
    """Generates deterministic instruction traces from a workload profile."""

    def __init__(self, profile: WorkloadProfile, seed: Optional[int] = None) -> None:
        self.profile = profile
        self.seed = profile.seed if seed is None else seed

    def generate(self, num_instructions: int) -> Trace:
        """Materialise ``num_instructions`` instructions as a :class:`Trace`."""
        profile = self.profile
        rng = DeterministicRng(self.seed)
        pc_column = array(PC_TYPECODE)
        address_column = array(ADDRESS_TYPECODE)
        flag_column = array(FLAG_TYPECODE)
        pc_append = pc_column.append
        address_append = address_column.append
        flag_append = flag_column.append

        mem_ref_fraction = profile.mem_ref_fraction
        store_fraction = profile.store_fraction
        branch_fraction = profile.branch_fraction

        for start, end, phase in profile.schedule().segments(num_instructions):
            state = _PhaseState(phase, rng)
            data_pattern = state.data_pattern
            code_pattern = state.code_pattern
            data_conflicts = state.data_conflicts
            code_conflicts = state.code_conflicts
            conflict_fraction = phase.conflict_fraction
            i_conflict_fraction = phase.i_conflict_fraction
            switch_probability = 1.0 / phase.instructions_per_fetch_block

            current_block = code_pattern.next_address(rng) & _BLOCK_MASK
            offset_in_block = 0

            for _ in range(end - start):
                uniform = rng.uniform

                # ---------------------------------------------------- control
                is_branch = uniform() < branch_fraction
                pc = current_block + offset_in_block * 4
                taken = False
                flags = 0
                if is_branch:
                    flags = FLAG_BRANCH
                    taken = uniform() < _branch_bias(pc)
                    if taken:
                        flags |= FLAG_TAKEN

                # ------------------------------------------------------- data
                data_address = 0
                if uniform() < mem_ref_fraction:
                    if data_conflicts is not None and uniform() < conflict_fraction:
                        data_address = data_conflicts.next_address(rng)
                    else:
                        data_address = data_pattern.next_address(rng)
                    flags |= FLAG_MEM
                    if uniform() < store_fraction:
                        flags |= FLAG_STORE

                pc_append(pc)
                address_append(data_address)
                flag_append(flags)

                # -------------------------------------------- next fetch block
                offset_in_block += 1
                leave_block = (
                    (is_branch and taken)
                    or offset_in_block * 4 >= _BLOCK_BYTES
                    or uniform() < switch_probability
                )
                if leave_block:
                    if code_conflicts is not None and uniform() < i_conflict_fraction:
                        current_block = code_conflicts.next_address(rng) & _BLOCK_MASK
                    else:
                        current_block = code_pattern.next_address(rng) & _BLOCK_MASK
                    offset_in_block = 0

        return Trace.from_columns(
            name=profile.name,
            pcs=pc_column,
            addresses=address_column,
            flags=flag_column,
            memory_level_parallelism=profile.memory_level_parallelism,
        )
