"""Execution phases.

A workload is a sequence of *phases*, each with its own data working set,
conflict behaviour and code footprint.  Phases are what give the dynamic
resizing strategy something to react to: applications with a single phase
("constant size" in the paper's Section 4.2 classification) gain nothing
from dynamic resizing, applications whose phases differ ("working-set
variation") or repeat ("periodic variation") do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.common.errors import WorkloadError
from repro.common.units import KIB


@dataclass(frozen=True)
class PhaseSpec:
    """Behaviour of the reference stream during one phase.

    Attributes:
        name: label used in reports and tests.
        weight: relative share of instructions this phase receives.
        data_working_set: bytes of data the phase actively references.
        data_sequential_fraction: fraction of data references that walk the
            working set sequentially (a streaming component).
        conflict_group_size: number of blocks in the data conflict group
            (0 disables it); the group maps into a single cache set.
        conflict_fraction: fraction of data references that go to the
            conflict group.
        conflict_burst_length: 1 cycles the group round-robin (strongly
            associativity-sensitive); larger values dwell on each member and
            soften the sensitivity.
        code_footprint: bytes of code the phase touches (the i-cache
            working set).
        instructions_per_fetch_block: average instructions executed in a
            fetch block before control moves to another block.
        i_conflict_group_size: number of conflicting code blocks (0 disables).
        i_conflict_fraction: fraction of fetch-block switches that go to the
            code conflict group.
    """

    name: str
    weight: float = 1.0
    data_working_set: int = 8 * KIB
    data_sequential_fraction: float = 0.10
    conflict_group_size: int = 0
    conflict_fraction: float = 0.0
    conflict_burst_length: int = 1
    code_footprint: int = 8 * KIB
    instructions_per_fetch_block: int = 8
    i_conflict_group_size: int = 0
    i_conflict_fraction: float = 0.0
    i_conflict_burst_length: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"phase weight must be positive, got {self.weight}")
        if self.data_working_set < 32 or self.code_footprint < 32:
            raise WorkloadError("working sets must be at least one block")
        if not 0.0 <= self.conflict_fraction <= 1.0:
            raise WorkloadError("conflict fraction must be in [0, 1]")
        if not 0.0 <= self.i_conflict_fraction <= 1.0:
            raise WorkloadError("instruction conflict fraction must be in [0, 1]")
        if self.conflict_fraction > 0.0 and self.conflict_group_size < 1:
            raise WorkloadError("a positive conflict fraction needs a conflict group")
        if self.i_conflict_fraction > 0.0 and self.i_conflict_group_size < 1:
            raise WorkloadError("a positive i-conflict fraction needs a conflict group")
        if self.instructions_per_fetch_block < 1:
            raise WorkloadError("instructions per fetch block must be at least 1")
        if self.conflict_burst_length < 1 or self.i_conflict_burst_length < 1:
            raise WorkloadError("conflict burst lengths must be at least 1")


class PhaseSchedule:
    """Maps instruction indices to phases.

    Two modes mirror the paper's classification:

    * sequential (``periodic=False``): each phase occupies a contiguous
      share of the run proportional to its weight — this models
      applications whose working set drifts over time;
    * periodic (``periodic=True``): the phases repeat every
      ``period_instructions`` instructions — this models applications such
      as *su2cor* whose "execution phases repeat".
    """

    def __init__(
        self,
        phases: Sequence[PhaseSpec],
        periodic: bool = False,
        period_instructions: int = 60_000,
    ) -> None:
        if not phases:
            raise WorkloadError("a schedule needs at least one phase")
        if period_instructions < len(phases):
            raise WorkloadError("period must allow at least one instruction per phase")
        self.phases: Tuple[PhaseSpec, ...] = tuple(phases)
        self.periodic = periodic
        self.period_instructions = period_instructions
        self._total_weight = sum(phase.weight for phase in self.phases)

    def segments(self, total_instructions: int) -> Iterator[Tuple[int, int, PhaseSpec]]:
        """Yield ``(start, end, phase)`` segments covering the whole run."""
        if total_instructions <= 0:
            raise WorkloadError("total instructions must be positive")
        if not self.periodic:
            yield from self._sequential_segments(total_instructions)
            return
        produced = 0
        while produced < total_instructions:
            remaining = total_instructions - produced
            period = min(self.period_instructions, remaining)
            for start, end, phase in self._split(period, offset=produced):
                yield start, end, phase
            produced += period

    def _sequential_segments(self, total_instructions: int) -> Iterator[Tuple[int, int, PhaseSpec]]:
        yield from self._split(total_instructions, offset=0)

    def _split(self, span: int, offset: int) -> List[Tuple[int, int, PhaseSpec]]:
        segments: List[Tuple[int, int, PhaseSpec]] = []
        start = 0
        for position, phase in enumerate(self.phases):
            if position == len(self.phases) - 1:
                end = span
            else:
                end = start + int(round(span * phase.weight / self._total_weight))
                end = min(end, span)
            if end > start:
                segments.append((offset + start, offset + end, phase))
            start = end
        if not segments:
            segments.append((offset, offset + span, self.phases[0]))
        return segments

    @property
    def is_multi_phase(self) -> bool:
        """True when the schedule actually changes behaviour over time."""
        return len(self.phases) > 1

    def __repr__(self) -> str:
        mode = "periodic" if self.periodic else "sequential"
        names = ", ".join(phase.name for phase in self.phases)
        return f"PhaseSchedule({mode}: {names})"
