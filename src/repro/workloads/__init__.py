"""Synthetic SPEC-like workloads.

The paper evaluates twelve SPEC95/SPEC2000 applications whose reference
inputs and binaries are not redistributable, so this package substitutes
synthetic reference streams whose cache behaviour matches what the paper
reports about each application: data and instruction working-set sizes,
conflict-miss propensity, and phase behaviour (constant, varying, or
periodic working sets).  Each profile in :mod:`repro.workloads.profiles`
cites the sentence of the paper that motivates its parameters.
"""

from repro.workloads.trace import InstructionRecord, Trace
from repro.workloads.ingest import (
    ExternalTraceSpec,
    ingest_trace_file,
    read_binary_trace,
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)
from repro.workloads.patterns import ConflictGroupPattern, WorkingSetPattern
from repro.workloads.phases import PhaseSchedule, PhaseSpec
from repro.workloads.profiles import (
    SPEC_APPLICATION_NAMES,
    WorkloadProfile,
    get_profile,
    iter_profiles,
)
from repro.workloads.generator import WorkloadGenerator

__all__ = [
    "InstructionRecord",
    "Trace",
    "ExternalTraceSpec",
    "ingest_trace_file",
    "read_text_trace",
    "read_binary_trace",
    "write_text_trace",
    "write_binary_trace",
    "WorkingSetPattern",
    "ConflictGroupPattern",
    "PhaseSpec",
    "PhaseSchedule",
    "WorkloadProfile",
    "SPEC_APPLICATION_NAMES",
    "get_profile",
    "iter_profiles",
    "WorkloadGenerator",
]
