"""Ingestion of *external* trace files into columnar :class:`Trace` buffers.

The synthetic workload generator covers the paper's twelve applications, but
the resizing strategies are only interesting on workloads nobody
parameterised — real traces captured elsewhere.  This module is the public
door for those: two documented, versioned on-disk formats (the spec lives in
``docs/TRACE_FORMAT.md`` and is asserted against this parser by
``tests/workloads/test_trace_format_spec.py``) and a streaming decoder that
converts either format straight into the structure-of-arrays columns the
replay engines consume, without ever materialising a row-oriented copy of
the trace.

Formats
-------

* **Text** (``.rtxt`` by convention): a line-oriented format meant to be
  produced by ad-hoc scripts and read by humans.  First line is the magic
  ``#RTXT 1``; optional ``#name`` / ``#mlp`` directives follow; then one
  record per line: ``PC KIND [ADDRESS]``.
* **Binary** (``.rtrc2`` by convention): magic ``RTX2``, a fixed 28-byte
  little-endian header carrying an endianness tag for the payload, the
  UTF-8 trace name, then fixed 17-byte records (pc ``u64``, data address
  ``u64``, flags ``u8``) in the tagged byte order.

Both parsers stream: the text reader works line by line, the binary reader
in bounded chunks of :data:`CHUNK_RECORDS` records, each appended
column-wise to the growing ``array`` buffers — peak memory is the output
columns plus one chunk, independent of file size.  Every malformed input
raises :class:`~repro.common.errors.TraceFormatError` with the line number
(text) or absolute byte offset (binary) of the offence; ``struct.error``
never escapes.

:class:`ExternalTraceSpec` is the job-layer handle: a declarative,
picklable pointer to a trace file that the sweep engine materialises on
demand, fingerprints by *content digest* (moving a file never invalidates
caches; editing it always does), and memoises through the on-disk trace
cache so a multi-gigabyte text trace is parsed once, not once per sweep.
"""

from __future__ import annotations

import hashlib
import os
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import BinaryIO, Dict, List, Optional, TextIO, Tuple, Union

from repro.common.errors import TraceFormatError
from repro.workloads.trace import (
    ADDRESS_TYPECODE,
    FLAG_BRANCH,
    FLAG_MEM,
    FLAG_STORE,
    FLAG_TAKEN,
    FLAG_TYPECODE,
    PC_TYPECODE,
    Trace,
)

# ---------------------------------------------------------------------------
# Format constants (docs/TRACE_FORMAT.md is the normative description; the
# spec-conformance test asserts the two never drift apart).
# ---------------------------------------------------------------------------

#: Text format magic (first line is ``#RTXT <version>``).
TEXT_MAGIC = "#RTXT"
#: Text format version this build reads and writes.
TEXT_FORMAT_VERSION = 1
#: Longest record/directive line the text parser accepts, in characters
#: (excluding the line terminator).  Longer lines are rejected with the
#: line number rather than silently truncated.
MAX_LINE_CHARS = 256

#: Binary format magic (first four bytes of an ``.rtrc2`` file).
BINARY_MAGIC = b"RTX2"
#: Binary format version this build reads and writes.
BINARY_FORMAT_VERSION = 1

#: Binary header: always packed little-endian; the ``byteorder`` field
#: (ASCII ``<`` or ``>``) describes the *record payload* only.
_BINARY_HEADER = struct.Struct("<4sHcBdQI")

#: Field-by-field layout of the binary header, ``(offset, size, name)``.
#: This is what the spec-conformance test checks the documentation against.
BINARY_HEADER_LAYOUT: List[Tuple[int, int, str]] = [
    (0, 4, "magic"),
    (4, 2, "version"),
    (6, 1, "byteorder"),
    (7, 1, "header_flags"),
    (8, 8, "mlp"),
    (16, 8, "record_count"),
    (24, 4, "name_length"),
]

#: One binary record: pc, data address, flags — 17 bytes, no padding.
BINARY_RECORD_LAYOUT: List[Tuple[int, int, str]] = [
    (0, 8, "pc"),
    (8, 8, "data_address"),
    (16, 1, "flags"),
]
_RECORD_FORMAT = "QQB"
_RECORD_SIZE = struct.calcsize("<" + _RECORD_FORMAT)

#: All flag bits a record may carry; anything else is a format error.
_KNOWN_FLAGS = FLAG_MEM | FLAG_STORE | FLAG_BRANCH | FLAG_TAKEN

#: Records decoded per read in the binary streaming path.  64k records is
#: ~1.1 MB of input per chunk — bounded memory however large the file.
CHUNK_RECORDS = 65536

#: Text record kinds → flag bits.  A kind is an optional memory prefix
#: (``L`` load / ``S`` store) fused with an optional branch suffix
#: (``BT`` taken / ``BN`` not taken); ``I`` is the plain instruction.
TEXT_KINDS: Dict[str, int] = {
    "I": 0,
    "L": FLAG_MEM,
    "S": FLAG_MEM | FLAG_STORE,
    "BT": FLAG_BRANCH | FLAG_TAKEN,
    "BN": FLAG_BRANCH,
    "LBT": FLAG_MEM | FLAG_BRANCH | FLAG_TAKEN,
    "LBN": FLAG_MEM | FLAG_BRANCH,
    "SBT": FLAG_MEM | FLAG_STORE | FLAG_BRANCH | FLAG_TAKEN,
    "SBN": FLAG_MEM | FLAG_STORE | FLAG_BRANCH,
}
_KIND_FOR_FLAGS = {bits: kind for kind, bits in TEXT_KINDS.items()}

#: Bump when ingest semantics change (parsing rules, flag validation, …);
#: mixed into external-trace fingerprints and trace-cache keys so converted
#: columns produced by an older decoder are never served.
INGEST_VERSION = 1

_UINT64_LIMIT = 1 << 64


def _check_uint64(value: int, what: str, path, line: Optional[int]) -> int:
    if not 0 <= value < _UINT64_LIMIT:
        raise TraceFormatError(
            f"{what} {value:#x} does not fit an unsigned 64-bit field",
            path=path, line=line,
        )
    return value


def _check_flags(flags: int, path, line: Optional[int] = None,
                 offset: Optional[int] = None) -> int:
    """Validate one record's flag byte (shared by both formats)."""
    if flags & ~_KNOWN_FLAGS:
        raise TraceFormatError(
            f"unknown flag bits {flags & ~_KNOWN_FLAGS:#04x} in record flags "
            f"{flags:#04x} (known bits: {_KNOWN_FLAGS:#04x})",
            path=path, line=line, offset=offset,
        )
    if flags & FLAG_STORE and not flags & FLAG_MEM:
        raise TraceFormatError(
            f"inconsistent record flags {flags:#04x}: STORE (0x2) requires MEM (0x1)",
            path=path, line=line, offset=offset,
        )
    if flags & FLAG_TAKEN and not flags & FLAG_BRANCH:
        raise TraceFormatError(
            f"inconsistent record flags {flags:#04x}: TAKEN (0x8) requires BRANCH (0x4)",
            path=path, line=line, offset=offset,
        )
    return flags


# ---------------------------------------------------------------------------
# Text format
# ---------------------------------------------------------------------------


def _parse_int(token: str, what: str, path, line: int) -> int:
    try:
        value = int(token, 0)  # 0x…/0o…/0b… prefixes or plain decimal
    except ValueError as exc:
        raise TraceFormatError(
            f"cannot parse {what} {token!r} as an integer", path=path, line=line
        ) from exc
    return _check_uint64(value, what, path, line)


def read_text_trace(path_or_file: Union[str, "TextIO"], name: Optional[str] = None) -> Trace:
    """Parse a text (``.rtxt``) trace file into a columnar :class:`Trace`.

    ``name`` overrides both the ``#name`` directive and the default (the
    file's stem).  Raises :class:`TraceFormatError` with the 1-based line
    number on any malformed input.
    """
    if hasattr(path_or_file, "read"):
        return _read_text(path_or_file, getattr(path_or_file, "name", None), name)
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return _read_text(handle, str(path_or_file), name)


def _read_text(handle: "TextIO", path: Optional[str], name_override: Optional[str]) -> Trace:
    pcs = array(PC_TYPECODE)
    addresses = array(ADDRESS_TYPECODE)
    flags = array(FLAG_TYPECODE)
    pc_append, address_append, flag_append = pcs.append, addresses.append, flags.append

    header_name: Optional[str] = None
    mlp = 1.0
    saw_magic = False
    saw_record = False

    for line_number, raw in enumerate(handle, start=1):
        line = raw.rstrip("\r\n")
        if len(line) > MAX_LINE_CHARS:
            raise TraceFormatError(
                f"line exceeds the {MAX_LINE_CHARS}-character limit "
                f"({len(line)} characters)",
                path=path, line=line_number,
            )
        if not saw_magic:
            parts = line.split()
            if len(parts) != 2 or parts[0] != TEXT_MAGIC:
                raise TraceFormatError(
                    f"not a text trace file: first line must be "
                    f"{TEXT_MAGIC!r} <version>, got {line!r}",
                    path=path, line=line_number,
                )
            if parts[1] != str(TEXT_FORMAT_VERSION):
                raise TraceFormatError(
                    f"unsupported text trace version {parts[1]!r} "
                    f"(this build reads version {TEXT_FORMAT_VERSION})",
                    path=path, line=line_number,
                )
            saw_magic = True
            continue
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            directive = stripped.split(None, 1)
            if directive[0] in ("#name", "#mlp"):
                if saw_record:
                    raise TraceFormatError(
                        f"directive {directive[0]!r} must precede the first record",
                        path=path, line=line_number,
                    )
                if len(directive) != 2:
                    raise TraceFormatError(
                        f"directive {directive[0]!r} requires a value",
                        path=path, line=line_number,
                    )
                if directive[0] == "#name":
                    header_name = directive[1].strip()
                else:
                    try:
                        mlp = float(directive[1])
                    except ValueError as exc:
                        raise TraceFormatError(
                            f"cannot parse #mlp value {directive[1]!r} as a float",
                            path=path, line=line_number,
                        ) from exc
                    if not mlp > 0:
                        raise TraceFormatError(
                            f"#mlp must be positive, got {mlp}",
                            path=path, line=line_number,
                        )
            continue  # any other '#…' line is a comment
        fields = stripped.split()
        if len(fields) not in (2, 3):
            raise TraceFormatError(
                f"record must be 'PC KIND [ADDRESS]', got {len(fields)} field(s)",
                path=path, line=line_number,
            )
        pc = _parse_int(fields[0], "pc", path, line_number)
        kind = fields[1]
        bits = TEXT_KINDS.get(kind)
        if bits is None:
            known = ", ".join(TEXT_KINDS)
            raise TraceFormatError(
                f"unknown record kind {kind!r} (known kinds: {known})",
                path=path, line=line_number,
            )
        if bits & FLAG_MEM:
            if len(fields) != 3:
                raise TraceFormatError(
                    f"memory record kind {kind!r} requires a data address",
                    path=path, line=line_number,
                )
            address = _parse_int(fields[2], "data address", path, line_number)
        else:
            if len(fields) != 2:
                raise TraceFormatError(
                    f"non-memory record kind {kind!r} takes no data address",
                    path=path, line=line_number,
                )
            address = 0
        pc_append(pc)
        address_append(address)
        flag_append(bits)
        saw_record = True

    if not saw_magic:
        raise TraceFormatError("empty file is not a text trace", path=path, line=1)
    name = name_override or header_name or _default_name(path)
    return Trace.from_columns(
        name=name, pcs=pcs, addresses=addresses, flags=flags,
        memory_level_parallelism=mlp,
    )


def write_text_trace(trace: Trace, path_or_file: Union[str, "TextIO"]) -> None:
    """Write ``trace`` in the text format (the inverse of :func:`read_text_trace`)."""
    if hasattr(path_or_file, "write"):
        _write_text(trace, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write_text(trace, handle)


def _write_text(trace: Trace, handle: "TextIO") -> None:
    write = handle.write
    write(f"{TEXT_MAGIC} {TEXT_FORMAT_VERSION}\n")
    write(f"#name {trace.name}\n")
    write(f"#mlp {trace.memory_level_parallelism!r}\n")
    pcs, addresses, flag_column = trace.columns()
    for pc, address, bits in zip(pcs, addresses, flag_column):
        kind = _KIND_FOR_FLAGS[bits]
        if bits & FLAG_MEM:
            write(f"{pc:#x} {kind} {address:#x}\n")
        else:
            write(f"{pc:#x} {kind}\n")


# ---------------------------------------------------------------------------
# Binary format
# ---------------------------------------------------------------------------


def read_binary_trace(path_or_file: Union[str, "BinaryIO"], name: Optional[str] = None) -> Trace:
    """Parse a binary (``.rtrc2``) trace file into a columnar :class:`Trace`.

    Decodes in bounded chunks of :data:`CHUNK_RECORDS` records, honouring
    the header's payload-endianness tag.  Raises :class:`TraceFormatError`
    with the absolute byte offset on any malformed input.
    """
    if hasattr(path_or_file, "read"):
        return _read_binary(path_or_file, getattr(path_or_file, "name", None), name)
    with open(path_or_file, "rb") as handle:
        return _read_binary(handle, str(path_or_file), name)


def _read_binary(handle: "BinaryIO", path: Optional[str], name_override: Optional[str]) -> Trace:
    header = handle.read(_BINARY_HEADER.size)
    if len(header) < 4 or header[:4] != BINARY_MAGIC:
        raise TraceFormatError(
            f"not a binary trace file (bad magic {header[:4]!r}, "
            f"expected {BINARY_MAGIC!r})",
            path=path, offset=0,
        )
    if len(header) != _BINARY_HEADER.size:
        raise TraceFormatError(
            f"truncated header: got {len(header)} of {_BINARY_HEADER.size} bytes",
            path=path, offset=len(header),
        )
    # The header layout is fixed and validated above, so unpack cannot fail
    # on size — but keep the struct.error guarantee airtight anyway.
    try:
        magic, version, byteorder, header_flags, mlp, count, name_length = (
            _BINARY_HEADER.unpack(header)
        )
    except struct.error as exc:  # pragma: no cover - size already checked
        raise TraceFormatError(
            f"undecodable header: {exc}", path=path, offset=0
        ) from exc
    if version != BINARY_FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported binary trace version {version} "
            f"(this build reads version {BINARY_FORMAT_VERSION})",
            path=path, offset=4,
        )
    if byteorder not in (b"<", b">"):
        raise TraceFormatError(
            f"invalid byte-order tag {byteorder!r} (expected b'<' or b'>')",
            path=path, offset=6,
        )
    if header_flags != 0:
        raise TraceFormatError(
            f"unknown header flags {header_flags:#04x} (version "
            f"{BINARY_FORMAT_VERSION} defines none)",
            path=path, offset=7,
        )
    if not mlp > 0:
        raise TraceFormatError(
            f"memory-level parallelism must be positive, got {mlp}",
            path=path, offset=8,
        )
    name_bytes = handle.read(name_length)
    if len(name_bytes) != name_length:
        raise TraceFormatError(
            f"truncated name: got {len(name_bytes)} of {name_length} bytes",
            path=path, offset=_BINARY_HEADER.size + len(name_bytes),
        )
    try:
        header_name = name_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"undecodable trace name: {exc}",
            path=path, offset=_BINARY_HEADER.size,
        ) from exc

    record_struct = struct.Struct(byteorder.decode("ascii") + _RECORD_FORMAT)
    pcs = array(PC_TYPECODE)
    addresses = array(ADDRESS_TYPECODE)
    flag_column = array(FLAG_TYPECODE)
    pc_append, address_append, flag_append = (
        pcs.append, addresses.append, flag_column.append,
    )

    records_start = _BINARY_HEADER.size + name_length
    remaining = count
    position = records_start
    while remaining > 0:
        batch = min(remaining, CHUNK_RECORDS)
        payload = handle.read(batch * _RECORD_SIZE)
        got, leftover = divmod(len(payload), _RECORD_SIZE)
        if leftover or got < batch:
            raise TraceFormatError(
                f"truncated record stream: header promises {count} records "
                f"but the file ends inside record {count - remaining + got}",
                path=path, offset=position + got * _RECORD_SIZE,
            )
        for pc, address, bits in record_struct.iter_unpack(payload):
            if bits & ~_KNOWN_FLAGS or (
                bits & (FLAG_STORE | FLAG_TAKEN)
                and ((bits & FLAG_STORE and not bits & FLAG_MEM)
                     or (bits & FLAG_TAKEN and not bits & FLAG_BRANCH))
            ):
                _check_flags(bits, path, offset=position)
            pc_append(pc)
            address_append(address)
            flag_append(bits)
            position += _RECORD_SIZE
        remaining -= batch
    if handle.read(1):
        raise TraceFormatError(
            f"trailing bytes after the last of {count} records",
            path=path, offset=position,
        )
    name = name_override or header_name or _default_name(path)
    return Trace.from_columns(
        name=name, pcs=pcs, addresses=addresses, flags=flag_column,
        memory_level_parallelism=mlp,
    )


def write_binary_trace(
    trace: Trace,
    path_or_file: Union[str, "BinaryIO"],
    byteorder: Optional[str] = None,
) -> None:
    """Write ``trace`` in the binary format.

    ``byteorder`` is ``"<"`` (little), ``">"`` (big) or None for the host
    order; the tag is recorded in the header so readers on any host decode
    correctly.
    """
    if byteorder is None:
        byteorder = "<" if sys.byteorder == "little" else ">"
    if byteorder not in ("<", ">"):
        raise TraceFormatError(f"byte order must be '<' or '>', got {byteorder!r}")
    if hasattr(path_or_file, "write"):
        _write_binary(trace, path_or_file, byteorder)
    else:
        with open(path_or_file, "wb") as handle:
            _write_binary(trace, handle, byteorder)


def _write_binary(trace: Trace, handle: "BinaryIO", byteorder: str) -> None:
    name_bytes = trace.name.encode("utf-8")
    handle.write(
        _BINARY_HEADER.pack(
            BINARY_MAGIC,
            BINARY_FORMAT_VERSION,
            byteorder.encode("ascii"),
            0,
            trace.memory_level_parallelism,
            len(trace),
            len(name_bytes),
        )
    )
    handle.write(name_bytes)
    record_struct = struct.Struct(byteorder + _RECORD_FORMAT)
    pack = record_struct.pack
    write = handle.write
    pcs, addresses, flag_column = trace.columns()
    for pc, address, bits in zip(pcs, addresses, flag_column):
        write(pack(pc, address, bits))


# ---------------------------------------------------------------------------
# Format sniffing
# ---------------------------------------------------------------------------


def ingest_trace_file(path: Union[str, "os.PathLike"], name: Optional[str] = None) -> Trace:
    """Read an external trace file of either format into a :class:`Trace`.

    The format is detected from the leading magic bytes, not the file
    extension (``.rtxt`` / ``.rtrc2`` are conventions only).  ``name``
    overrides the trace's self-declared name.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        magic = handle.read(5)
    if magic[:4] == BINARY_MAGIC:
        return read_binary_trace(path, name=name)
    if magic[: len(TEXT_MAGIC)] == TEXT_MAGIC.encode("ascii"):
        return read_text_trace(path, name=name)
    raise TraceFormatError(
        f"unrecognised trace file (leading bytes {magic!r}; expected "
        f"{BINARY_MAGIC!r} for the binary format or "
        f"{TEXT_MAGIC!r} for the text format)",
        path=path, offset=0,
    )


def _default_name(path: Optional[str]) -> str:
    if not path:
        return "external-trace"
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem or "external-trace"


# ---------------------------------------------------------------------------
# Content digests and the job-layer spec
# ---------------------------------------------------------------------------

#: Per-process digest memo keyed by (realpath, size, mtime_ns): fingerprints
#: of an unchanged file cost one stat instead of a full hash pass.  Entries
#: are only ever replaced by newer stats, never shared across processes.
_FILE_DIGEST_MEMO: Dict[str, Tuple[Tuple[int, int], str]] = {}


def file_digest(path: Union[str, "os.PathLike"]) -> str:
    """Streaming SHA-256 of a file's content, memoised on (size, mtime).

    This is the identity external-trace fingerprints and trace-cache keys
    are built from: the same bytes digest identically wherever the file
    lives, so moving or re-downloading a trace never invalidates caches,
    while any edit always does.
    """
    real = os.path.realpath(os.fspath(path))
    stat = os.stat(real)
    signature = (stat.st_size, stat.st_mtime_ns)
    memo = _FILE_DIGEST_MEMO.get(real)
    if memo is not None and memo[0] == signature:
        return memo[1]
    digest = hashlib.sha256()
    with open(real, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    hexdigest = digest.hexdigest()
    _FILE_DIGEST_MEMO[real] = (signature, hexdigest)
    return hexdigest


@dataclass(frozen=True)
class ExternalTraceSpec:
    """Names an external trace file without materialising it.

    The declarative counterpart of :class:`~repro.sim.runner.TraceSpec` for
    ingested traces: jobs carry this spec (a couple of strings) instead of
    the decoded columns, and whichever process executes the job parses the
    file — through the per-process memo and the on-disk trace cache, so the
    conversion happens once per machine, not once per job.

    Fingerprinting is by *content*: the file's digest (plus the ingest
    semantics version), never its path, so caches survive renames and
    reject edits.

    Attributes:
        path: the trace file (text or binary format, sniffed by magic).
        name: optional override of the trace's self-declared name; also the
            application name the spec reports to sweeps and experiments.
    """

    path: str
    name: Optional[str] = None

    @property
    def application(self) -> str:
        """Display/application name (mirrors :class:`TraceSpec.application`)."""
        return self.name or _default_name(self.path)

    def materialize(self) -> Trace:
        """Parse the file this spec points to."""
        return ingest_trace_file(self.path, name=self.name)

    def content_digest(self) -> str:
        """Digest of the file's bytes (see :func:`file_digest`)."""
        return file_digest(self.path)

    def fingerprint_payload(self) -> Dict[str, object]:
        """Canonical identity for job fingerprints and trace-cache keys."""
        return {
            "kind": "external-trace",
            "content": self.content_digest(),
            "name": self.name,
            "ingest_version": INGEST_VERSION,
        }

    # Consumed by repro.sim.tracecache.TraceCache.key_for via duck typing,
    # so the cache module needs no import of (or dispatch on) this class.
    trace_cache_payload = fingerprint_payload
