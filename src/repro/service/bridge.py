"""Async-to-runner bridge: one daemon thread owns the sweep engine.

:class:`~repro.sim.runner.SweepRunner` is not thread-safe (its memo,
pending graph and pool are all single-owner state), so the service never
touches it from the event loop.  Instead a single dedicated **daemon**
thread owns the runner for the server's whole lifetime, and
:class:`RunnerBridge` ships work to it one request at a time:

* requests serialize naturally (one thread), so per-request retry-policy
  swaps — the per-request deadline maps onto the policy's ``job_timeout``
  — cannot race each other;
* progress events flow back with ``loop.call_soon_threadsafe``, the only
  sanctioned way to touch event-loop state from the runner thread;
* the thread is a daemon with its own task queue (deliberately not a
  ``ThreadPoolExecutor``, whose atexit hook would *join* a wedged drain
  and block the graceful-drain exit): if a drain hangs past the drain
  grace, the process can still exit 0 — the pool's worker processes are
  killed by :meth:`SweepRunner.close` from the shutdown path, which is
  re-entry safe precisely for this reason.

Memory stays bounded across requests: after every request the bridge
calls :meth:`SweepRunner.release_results`, dropping settled futures (and
the results they pin) from the in-memory memo — cross-request dedup is
the on-disk job cache's business.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import replace
from typing import Any, Callable, Dict, Mapping, Optional

from repro.common.errors import DeadlineExceededError
from repro.experiments.context import ExperimentContext
from repro.experiments.orchestrator import DoEOrchestrator
from repro.experiments.spec import ExperimentSpec
from repro.sim.runner import SimJob, SweepRunner


class RunnerThread:
    """A one-thread task executor whose thread never blocks process exit."""

    def __init__(self, name: str = "sweep-runner") -> None:
        self._tasks: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()
        self._tasks.put((fn, args, future))
        return future

    def _run(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            fn, args, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - ferried to the caller
                future.set_exception(exc)

    def stop(self) -> None:
        """Ask the thread to exit after the tasks already queued."""
        self._tasks.put(None)

    def join(self, timeout: Optional[float] = None) -> bool:
        self._thread.join(timeout)
        return not self._thread.is_alive()


class RunnerBridge:
    """Ships jobs and spec runs from the event loop to the runner thread."""

    def __init__(self, runner: SweepRunner, context_options: Optional[Dict[str, Any]] = None):
        self.runner = runner
        #: ExperimentContext keyword defaults for spec runs (n_instructions,
        #: sample_every, ...), fixed at server start so a spec handle's
        #: identity (spec fingerprint + these params) is stable.
        self.context_options = dict(context_options or {})
        self._thread = RunnerThread()

    # ------------------------------------------------------------ execution
    async def run_job(
        self,
        job: SimJob,
        deadline: Optional[float] = None,
        progress: Optional[Callable[[dict], None]] = None,
    ) -> Any:
        """Execute one job on the runner thread; returns its result dict.

        ``deadline`` is the request's remaining wall-clock budget in
        seconds, measured from now: it tightens the retry policy's
        ``job_timeout`` (so a hung worker is killed rather than outliving
        the request) and is re-checked before execution starts, so a
        request that rotted in the admission queue fails fast with 504
        instead of burning a pool slot.
        """
        expires = None if deadline is None else time.monotonic() + deadline
        result = await self._submit(self._execute_job, job, expires, progress)
        return result.to_dict()

    async def run_spec(
        self,
        spec: ExperimentSpec,
        deadline: Optional[float] = None,
        progress: Optional[Callable[[dict], None]] = None,
    ) -> Dict[str, Any]:
        """Execute one experiment spec; returns its ``--output`` payload."""
        expires = None if deadline is None else time.monotonic() + deadline
        return await self._submit(self._execute_spec, spec, expires, progress)

    async def close(self, grace: float = 10.0) -> bool:
        """Shut the runner down from the runner thread; True on clean exit.

        Waits up to ``grace`` seconds.  On timeout the runner is closed
        from *this* thread instead — safe now that ``close()`` tolerates
        re-entry — so worker processes and shared-memory segments never
        outlive the server even when a drain is wedged.
        """
        future = self._thread.submit(self.runner.close)
        self._thread.stop()
        try:
            await asyncio.wait_for(asyncio.wrap_future(future), timeout=grace)
            clean = True
        except Exception:  # noqa: BLE001 - timeout or a close() failure
            self.runner.close()
            clean = False
        return clean

    async def _submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        return await asyncio.wrap_future(self._thread.submit(fn, *args))

    # ----------------------------------------------- runner-thread internals
    def _check_deadline(self, expires: Optional[float]) -> Optional[float]:
        """Remaining seconds, or raise 504 if the budget is already spent."""
        if expires is None:
            return None
        remaining = expires - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError(
                "request deadline elapsed before execution started "
                "(it queued longer than its deadline_seconds budget)"
            )
        return remaining

    def _tighten_policy(self, remaining: Optional[float]):
        """Map the request deadline onto the retry policy's job timeout."""
        base = self.runner.retry_policy
        if remaining is None:
            return base, base
        timeout = base.job_timeout
        tightened = remaining if timeout is None else min(timeout, remaining)
        return base, replace(base, job_timeout=tightened)

    def _execute_job(
        self,
        job: SimJob,
        expires: Optional[float],
        progress: Optional[Callable[[dict], None]],
    ):
        remaining = self._check_deadline(expires)
        base, policy = self._tighten_policy(remaining)
        self.runner.retry_policy = policy
        self.runner.progress_callback = progress
        try:
            result = self.runner.run_one(job)
        finally:
            self.runner.retry_policy = base
            self.runner.progress_callback = None
            self.runner.release_results()
        self._check_deadline(expires)  # ran past its budget inline? honest 504
        return result

    def _execute_spec(
        self,
        spec: ExperimentSpec,
        expires: Optional[float],
        progress: Optional[Callable[[dict], None]],
    ) -> Dict[str, Any]:
        remaining = self._check_deadline(expires)
        base, policy = self._tighten_policy(remaining)
        # A fresh context per request: its future memo must not leak across
        # requests (the runner's job cache provides cross-request reuse).
        context = ExperimentContext(runner=self.runner, **self.context_options)
        orchestrator = DoEOrchestrator(context)
        self.runner.retry_policy = policy
        self.runner.progress_callback = progress
        try:
            store = orchestrator.execute(spec)
        finally:
            self.runner.retry_policy = base
            self.runner.progress_callback = None
            self.runner.release_results()
        self._check_deadline(expires)
        return store.to_payload()


def threadsafe_progress(
    loop: asyncio.AbstractEventLoop, apply: Callable[[dict], None]
) -> Callable[[dict], None]:
    """Wrap a loop-side progress consumer for invocation from the runner
    thread (the runner fires callbacks in whatever thread drains)."""

    def callback(event: dict) -> None:
        try:
            loop.call_soon_threadsafe(apply, event)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    return callback
