"""Simulation-as-a-service: the crash-safe async sweep server.

``python -m repro serve`` runs :class:`~repro.service.server.SweepService`,
a stdlib-only (asyncio + raw HTTP/1.1) long-running front end over the
sweep engine.  See ``docs/SERVICE.md`` for the API reference and
robustness semantics (admission control, fair queueing, dedup, deadlines,
circuit breaking, graceful drain, crash-safe restart).
"""

from repro.service.server import ServeConfig, SweepService, serve

__all__ = ["ServeConfig", "SweepService", "serve"]
