"""Admission control for the sweep service: fair queueing and shedding.

Two small, independently testable pieces:

* :class:`FairQueue` — a bounded, per-tenant admission queue.  Tenants
  (the ``X-Tenant`` request header, defaulting to one shared bucket) each
  get their own FIFO; a round-robin ring picks the next tenant to serve,
  so one tenant flooding the server delays only itself — other tenants'
  requests interleave at one-per-turn regardless of backlog depth.  The
  queue never grows beyond its bound: :meth:`FairQueue.offer` *raises*
  :class:`~repro.common.errors.AdmissionFullError` (the HTTP layer turns
  it into ``429`` + ``Retry-After``) instead of buffering — explicit
  backpressure, never unbounded memory.
* :class:`CircuitBreaker` — a sliding-window failure counter that sheds
  *new* work while the worker pool is sick.  The server reports the
  transient-failure delta (worker deaths + quarantined jobs) after every
  request; when the recent total crosses the threshold the breaker opens
  for a cooldown, then half-opens to let one probe request through — a
  success closes it, another failure re-opens it.

Both live on the event-loop thread only and need no locks; the time
source is injectable so tests drive the breaker deterministically.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.common.errors import AdmissionFullError

#: Tenant bucket used when a request carries no X-Tenant header.
DEFAULT_TENANT = "public"

#: Fallback per-item estimate (seconds) before any request has completed,
#: used to compute Retry-After for the very first shed.
_DEFAULT_SERVICE_TIME = 5.0


class FairQueue:
    """Bounded admission queue with per-tenant round-robin dequeue order."""

    def __init__(self, limit: int, tenant_limit: Optional[int] = None) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be at least 1, got {limit}")
        self.limit = limit
        self.tenant_limit = tenant_limit if tenant_limit is not None else limit
        self._tenants: Dict[str, Deque[object]] = {}
        self._ring: List[str] = []  # dequeue order; rotated on every take
        self._size = 0
        self._available = asyncio.Event()
        self._closed = False
        # Exponential moving average of request service times, feeding the
        # Retry-After estimate: "the queue is this deep and items take this
        # long, come back then".
        self._avg_service_time = _DEFAULT_SERVICE_TIME

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str) -> int:
        """Queued items for one tenant."""
        backlog = self._tenants.get(tenant)
        return 0 if backlog is None else len(backlog)

    def note_service_time(self, seconds: float) -> None:
        """Fold one completed request's duration into the moving average."""
        if seconds > 0:
            self._avg_service_time = 0.7 * self._avg_service_time + 0.3 * seconds

    def retry_after(self, extra_depth: int = 0) -> float:
        """Seconds until a slot plausibly frees up (the 429 hint).

        A single worker drains the queue sequentially, so the estimate is
        queue depth times the average service time, floored at one second
        — a hint for polite clients, not a promise.
        """
        return max(1.0, round((self._size + extra_depth) * self._avg_service_time, 1))

    def offer(self, item: object, tenant: str = DEFAULT_TENANT) -> None:
        """Admit ``item`` for ``tenant`` or raise :class:`AdmissionFullError`.

        Admission is all-or-nothing and synchronous: by the time the HTTP
        handler responds 202 the item *is* queued, and by the time it
        responds 429 no trace of the request remains — a shed request
        costs O(1) work and zero retained memory.
        """
        backlog = self._tenants.get(tenant)
        if self._size >= self.limit:
            raise AdmissionFullError(
                f"admission queue is full ({self._size}/{self.limit} queued)",
                retry_after=self.retry_after(),
            )
        if backlog is not None and len(backlog) >= self.tenant_limit:
            raise AdmissionFullError(
                f"tenant {tenant!r} has {len(backlog)} request(s) queued "
                f"(per-tenant limit {self.tenant_limit})",
                retry_after=self.retry_after(),
            )
        if backlog is None:
            backlog = deque()
            self._tenants[tenant] = backlog
            self._ring.append(tenant)
        backlog.append(item)
        self._size += 1
        self._available.set()

    async def take(self) -> Optional[object]:
        """Next item in round-robin tenant order; None once closed and empty."""
        while True:
            if self._size:
                for _ in range(len(self._ring)):
                    tenant = self._ring.pop(0)
                    backlog = self._tenants[tenant]
                    if not backlog:
                        del self._tenants[tenant]
                        continue
                    item = backlog.popleft()
                    self._size -= 1
                    if backlog:
                        self._ring.append(tenant)  # back of the ring: fairness
                    else:
                        del self._tenants[tenant]
                    if not self._size:
                        self._available.clear()
                    return item
            if self._closed:
                return None
            self._available.clear()
            await self._available.wait()

    def close(self) -> List[object]:
        """Stop admissions, wake the consumer, return what was still queued."""
        self._closed = True
        leftover: List[object] = []
        for tenant in list(self._ring):
            backlog = self._tenants.pop(tenant, None)
            if backlog:
                leftover.extend(backlog)
        self._ring.clear()
        self._size = 0
        self._available.set()
        return leftover


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Sliding-window transient-failure breaker for the submission path.

    ``record_failures(n)`` is called after every executed request with the
    number of fresh transient failures it observed (worker deaths plus
    newly quarantined jobs).  Once ``threshold`` failures accumulate
    within ``window`` seconds the breaker opens: :meth:`allow` returns
    False (the server responds 503) until ``cooldown`` elapses, then one
    probe request is let through half-open — its outcome closes or
    re-opens the circuit.
    """

    def __init__(
        self,
        threshold: int = 5,
        window: float = 60.0,
        cooldown: float = 15.0,
        time_func: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = max(1, threshold)
        self.window = window
        self.cooldown = cooldown
        self._now = time_func
        self._failures: Deque[float] = deque()
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return CLOSED
        if self._probing:
            return HALF_OPEN
        if self._now() - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return OPEN

    def retry_after(self) -> float:
        """Seconds until the breaker half-opens (the 503 Retry-After hint)."""
        if self._opened_at is None:
            return 1.0
        return max(1.0, round(self.cooldown - (self._now() - self._opened_at), 1))

    def allow(self) -> bool:
        """May a new submission be admitted right now?

        Open: no.  Half-open: yes, but only one in-flight probe at a time
        — concurrent submissions during the probe are still shed, so a
        thundering herd cannot trample a recovering pool.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """A request completed without transient failures."""
        if self._opened_at is not None and self._probing:
            # The half-open probe succeeded: close and forget history.
            self._opened_at = None
            self._probing = False
            self._failures.clear()

    def record_failures(self, count: int) -> None:
        """Fold ``count`` fresh transient failures into the window."""
        if count <= 0:
            self.record_success()
            return
        now = self._now()
        for _ in range(count):
            self._failures.append(now)
        cutoff = now - self.window
        while self._failures and self._failures[0] < cutoff:
            self._failures.popleft()
        if self._opened_at is not None:
            # Failure while open/half-open (the probe failed): restart the
            # cooldown from now.
            self._opened_at = now
            self._probing = False
        elif len(self._failures) >= self.threshold:
            self._opened_at = now
            self._probing = False
