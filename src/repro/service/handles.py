"""Crash-safe job handles: the service's unit of client-visible state.

Every accepted submission gets a **handle** derived from the work's
content fingerprint (see :mod:`repro.service.codec`), and every handle is
backed by a small JSON manifest under ``<cache-dir>/service/handles/``,
written atomically at each state transition.  That manifest is what makes
the service crash-safe:

* a handle that reached ``done`` before a crash is served straight from
  its manifest after restart — completed work never answers 500 and is
  never re-simulated;
* a handle that was still ``queued``/``running`` is re-admitted through
  the normal submission path on boot; if its jobs finished before the
  crash they resolve from the warm job cache (zero simulations), and only
  genuinely unfinished work re-executes — at-most-once simulation.

In-memory state is a bounded LRU over :class:`Handle` objects (each
carrying an :class:`asyncio.Event` for long-polling); evicted handles
fall back to their manifests on the next ``GET``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.common.atomicio import atomic_write_json
from repro.common.errors import UnknownHandleError

#: Handle lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: In-memory handles retained before LRU eviction (manifests persist).
DEFAULT_MEMORY_LIMIT = 4096


class Handle:
    """One unit of client-visible work: state, payload, eventual result."""

    def __init__(
        self,
        handle: str,
        kind: str,
        payload: Dict[str, Any],
        tenant: str,
        created_at: Optional[float] = None,
    ) -> None:
        self.handle = handle
        self.kind = kind  # "job" | "spec"
        self.payload = payload  # canonical (hint-stripped) submission payload
        self.tenant = tenant
        self.state = QUEUED
        self.created_at = created_at if created_at is not None else time.time()
        self.finished_at: Optional[float] = None
        self.result: Optional[Any] = None
        self.error: Optional[Dict[str, Any]] = None
        self.progress: Dict[str, int] = {"completed": 0}
        self.settled = asyncio.Event()

    @property
    def done(self) -> bool:
        return self.state in (DONE, FAILED)

    # -------------------------------------------------------- state changes
    def mark_running(self) -> None:
        self.state = RUNNING

    def mark_done(self, result: Any) -> None:
        self.state = DONE
        self.result = result
        self.finished_at = time.time()
        self.settled.set()

    def mark_failed(self, code: str, message: str) -> None:
        self.state = FAILED
        self.error = {"code": code, "message": message}
        self.finished_at = time.time()
        self.settled.set()

    # ---------------------------------------------------------- wire formats
    def status_payload(self) -> Dict[str, Any]:
        """The ``GET /jobs/{handle}`` body (deterministic for done handles)."""
        body: Dict[str, Any] = {
            "handle": self.handle,
            "kind": self.kind,
            "state": self.state,
        }
        if self.state == RUNNING:
            body["progress"] = dict(self.progress)
        if self.state == DONE:
            body["result"] = self.result
        if self.state == FAILED:
            body["error"] = self.error
        return body

    def manifest(self) -> Dict[str, Any]:
        """The persisted form (everything needed to resume after restart)."""
        return {
            "version": 1,
            "handle": self.handle,
            "kind": self.kind,
            "state": DONE if self.state == DONE else (
                FAILED if self.state == FAILED else QUEUED
            ),  # "running" is not a restartable state: it resumes as queued
            "payload": self.payload,
            "tenant": self.tenant,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any]) -> "Handle":
        handle = cls(
            handle=manifest["handle"],
            kind=manifest["kind"],
            payload=manifest["payload"],
            tenant=manifest.get("tenant", "public"),
            created_at=manifest.get("created_at"),
        )
        handle.state = manifest.get("state", QUEUED)
        handle.finished_at = manifest.get("finished_at")
        handle.result = manifest.get("result")
        handle.error = manifest.get("error")
        if handle.done:
            handle.settled.set()
        return handle


class HandleStore:
    """Bounded in-memory handle table backed by per-handle JSON manifests."""

    def __init__(self, directory: Optional[Path], memory_limit: int = DEFAULT_MEMORY_LIMIT):
        self.directory = None if directory is None else Path(directory)
        self.memory_limit = memory_limit
        self._handles: Dict[str, Handle] = {}  # insertion-ordered LRU
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._handles)

    def _path(self, handle_id: str) -> Optional[Path]:
        if self.directory is None:
            return None
        # Handle ids are codec-generated (prefix + hex digest), but GET
        # paths arrive from the network: refuse anything that could escape
        # the manifest directory before it touches the filesystem.
        if not handle_id or any(ch in handle_id for ch in "/\\.") or len(handle_id) > 128:
            return None
        return self.directory / f"{handle_id}.json"

    # ------------------------------------------------------------- accessors
    def get(self, handle_id: str) -> Handle:
        """The live handle, falling back to its manifest; 404 if neither."""
        handle = self._handles.pop(handle_id, None)
        if handle is not None:
            self._handles[handle_id] = handle  # re-insert: most recently used
            return handle
        path = self._path(handle_id)
        if path is not None and path.is_file():
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    manifest = json.load(stream)
                handle = Handle.from_manifest(manifest)
            except (OSError, ValueError, KeyError):
                handle = None
            if handle is not None:
                self._remember(handle)
                return handle
        raise UnknownHandleError(f"unknown job handle {handle_id!r}")

    def lookup(self, handle_id: str) -> Optional[Handle]:
        """Like :meth:`get` but returns None instead of raising."""
        try:
            return self.get(handle_id)
        except UnknownHandleError:
            return None

    def add(self, handle: Handle) -> None:
        """Register a fresh handle and persist its manifest."""
        self._remember(handle)
        self.persist(handle)

    def _remember(self, handle: Handle) -> None:
        self._handles.pop(handle.handle, None)
        self._handles[handle.handle] = handle
        while len(self._handles) > self.memory_limit:
            # Never evict live work: a queued/running handle's object
            # identity is shared with the queue and the worker loop.
            for candidate_id, candidate in self._handles.items():
                if candidate.done:
                    del self._handles[candidate_id]
                    break
            else:
                break

    def persist(self, handle: Handle) -> None:
        """Atomically write the handle's manifest (best-effort)."""
        path = self._path(handle.handle)
        if path is None:
            return
        try:
            atomic_write_json(path, handle.manifest(), indent=2, sort_keys=True)
        except OSError:
            pass

    # --------------------------------------------------------------- restart
    def unfinished_manifests(self) -> List[Handle]:
        """Handles whose manifests never reached a terminal state.

        Called once at boot: the server re-admits these through the normal
        submission path, so a crash mid-run degrades to "those requests
        re-queue", never to lost handles or re-simulated completed work.
        """
        if self.directory is None:
            return []
        pending: List[Handle] = []
        try:
            entries = sorted(os.listdir(self.directory))
        except OSError:
            return []
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            try:
                with open(self.directory / entry, "r", encoding="utf-8") as stream:
                    manifest = json.load(stream)
                handle = Handle.from_manifest(manifest)
            except (OSError, ValueError, KeyError):
                continue  # torn/corrupt manifest: the atomic write makes this rare
            if not handle.done:
                pending.append(handle)
        return pending
