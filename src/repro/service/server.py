"""The crash-safe async sweep server (``python -m repro serve``).

A long-running, stdlib-only HTTP/1.1 service over the existing sweep
stack: clients POST validated :class:`~repro.sim.runner.SimJob` payloads
or :class:`~repro.experiments.spec.ExperimentSpec` documents, receive
fingerprint-derived handles, and poll (or stream) until the work is done.
``docs/SERVICE.md`` is the API reference; the robustness properties are:

* **bounded admission** — a :class:`~repro.service.queue.FairQueue` with
  per-tenant fair scheduling; a full queue answers ``429`` +
  ``Retry-After``, never buffers unbounded requests;
* **request dedup** — handles are content fingerprints, so N clients
  submitting the same work share one execution and receive byte-identical
  responses; completed fingerprints resolve straight from the job cache;
* **deadlines** — a payload's ``deadline_seconds`` maps onto the retry
  policy's per-job timeout and is enforced before and after execution;
* **circuit breaking** — when the transient-failure rate (worker deaths +
  quarantined jobs) spikes, new submissions shed with ``503`` until a
  cooldown and a successful half-open probe;
* **graceful drain** — SIGTERM/SIGINT stop admissions (``/readyz`` goes
  503), let the in-flight request finish within ``--drain-grace``,
  persist every handle manifest, close the runner (checkpoint manifest,
  pool and shared-memory teardown) and exit 0;
* **crash-safe restart** — handle manifests under
  ``<cache-dir>/service/handles/`` re-admit unfinished work on boot,
  while finished work is served from its manifest (or the warm job
  cache) without re-simulating: at-most-once simulation, never a 500
  for completed work.

The HTTP layer is deliberately minimal (``asyncio.start_server``, one
request per connection, ``Connection: close``): the service's value is
the robustness semantics, not protocol features.
"""

from __future__ import annotations

import asyncio
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.common.counters import CounterRegistry
from repro.common.errors import (
    AdmissionFullError,
    CircuitOpenError,
    InvalidRequestError,
    ReproError,
    ServiceDrainingError,
    ServiceError,
)
from repro.service import codec
from repro.service.bridge import RunnerBridge, threadsafe_progress
from repro.service.handles import FAILED, QUEUED, Handle, HandleStore
from repro.service.queue import DEFAULT_TENANT, CircuitBreaker, FairQueue
from repro.sim.jobcache import JobCache
from repro.sim.runner import RetryPolicy, SweepRunner

#: Longest ``?wait=`` long-poll the server honours, seconds.
MAX_WAIT_SECONDS = 30.0

#: Progress events are streamed at most this often, seconds.
STREAM_INTERVAL = 0.5

_STATUS_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` configures."""

    host: str = "127.0.0.1"
    port: int = 8765
    jobs: int = 1
    cache_dir: str = ".repro-cache"
    queue_limit: int = 64
    tenant_queue_limit: Optional[int] = None
    breaker_threshold: int = 5
    breaker_window: float = 60.0
    breaker_cooldown: float = 15.0
    drain_grace: float = 10.0
    job_timeout: Optional[float] = None
    job_retries: int = 2
    instructions: int = 60_000
    max_body_kib: int = 256
    context_options: Dict[str, Any] = field(default_factory=dict)


class _QueueItem:
    """One admitted unit of work: the handle plus how to execute it."""

    __slots__ = ("handle", "work", "expires")

    def __init__(self, handle: Handle, work: Any, expires: Optional[float]) -> None:
        self.handle = handle
        self.work = work  # SimJob | ExperimentSpec
        # Absolute monotonic expiry: the deadline clock starts at admission,
        # so time spent queued counts against the request's budget.
        self.expires = expires


class SweepService:
    """The server: admission control, the worker loop, and the HTTP front."""

    def __init__(self, config: ServeConfig, runner: Optional[SweepRunner] = None) -> None:
        self.config = config
        cache_dir = config.cache_dir
        self.cache = JobCache(cache_dir)
        if runner is None:
            runner = SweepRunner(
                jobs=config.jobs,
                cache=self.cache,
                trace_cache=f"{cache_dir}/traces",
                retry_policy=RetryPolicy(
                    max_attempts=config.job_retries + 1,
                    job_timeout=config.job_timeout,
                ),
                checkpoint_path=f"{cache_dir}/checkpoint.json",
            )
        self.runner = runner
        context_options = dict(config.context_options)
        context_options.setdefault("n_instructions", config.instructions)
        self.bridge = RunnerBridge(runner, context_options)
        self.handles = HandleStore(f"{cache_dir}/service/handles")
        self.queue = FairQueue(config.queue_limit, config.tenant_queue_limit)
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            window=config.breaker_window,
            cooldown=config.breaker_cooldown,
        )
        self.counters = CounterRegistry({
            "accepted": 0, "completed": 0, "deduped": 0, "drained": 0,
            "failed": 0, "requests": 0, "shed": 0, "cache_hits": 0,
            "resumed": 0,
        })
        self.draining = False
        self.bound_port: Optional[int] = None
        self.started = asyncio.Event()
        self._stopped = asyncio.Event()
        self._worker_task: Optional[asyncio.Task] = None
        self._inflight: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        # Test hook: while paused the worker loop takes nothing, so tests
        # can fill the queue deterministically before asserting 429s.
        self._unpaused = asyncio.Event()
        self._unpaused.set()
        self._exit_code = 0

    # ------------------------------------------------------------ lifecycle
    async def serve_forever(self) -> int:
        """Bind, resume persisted handles, run until drained; exit code."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda s=signum: asyncio.ensure_future(self.shutdown(s))
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or platform without signal support
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._worker_task = asyncio.create_task(self._worker_loop())
        self._resume_persisted()
        self.started.set()
        print(
            f"serving on {self.config.host}:{self.bound_port} "
            f"(cache: {self.config.cache_dir}, queue limit {self.queue.limit})",
            flush=True,
        )
        await self._stopped.wait()
        return self._exit_code

    def _resume_persisted(self) -> None:
        """Re-admit every non-terminal handle manifest through admission.

        Completed work resolves from the warm job cache inside the worker
        loop, so a restart after a crash re-simulates only what genuinely
        never finished.  Overflow beyond the queue bound stays on disk as
        a queued manifest — a later restart (or an explicit resubmission)
        picks it up; no handle is ever lost.
        """
        for handle in self.handles.unfinished_manifests():
            try:
                if handle.kind == "job":
                    work: Any = codec.job_from_payload(handle.payload)
                else:
                    work = codec.spec_from_payload(handle.payload)
            except InvalidRequestError as exc:
                handle.mark_failed(exc.code, str(exc))
                self.handles.add(handle)
                continue
            try:
                self.queue.offer(_QueueItem(handle, work, None), handle.tenant)
            except AdmissionFullError:
                continue  # stays queued on disk; not lost, just not resumed yet
            handle.state = QUEUED
            handle.settled = asyncio.Event()
            self.handles.add(handle)
            self.counters.inc("resumed")

    async def shutdown(self, signum: int = signal.SIGTERM) -> None:
        """Graceful drain: stop admissions, finish in-flight, persist, exit 0."""
        if self.draining:
            return
        self.draining = True
        print(
            f"draining on signal {signum}: admissions closed, "
            f"{len(self.queue)} queued, "
            f"{'one request' if self._inflight else 'nothing'} in flight",
            flush=True,
        )
        leftover = self.queue.close()
        for item in leftover:
            # Still queued at shutdown: the manifest already says "queued",
            # so a restarted server re-admits it; count it as drained work.
            self.handles.persist(item.handle)
            self.counters.inc("drained")
        if self._inflight is not None:
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._inflight), timeout=self.config.drain_grace
                )
            except (asyncio.TimeoutError, Exception):  # noqa: BLE001
                pass
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        clean = await self.bridge.close(grace=self.config.drain_grace)
        if not clean:
            print("drain grace expired; runner closed forcefully", flush=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        print(
            f"drained: {self.counters['completed']} completed, "
            f"{self.counters['drained']} requeued for restart, exit 0",
            flush=True,
        )
        self._exit_code = 0
        self._stopped.set()

    # ---------------------------------------------------------- worker loop
    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self.queue.take()
            if item is None:
                return  # queue closed: draining
            # The pause gate sits *after* the take: the worker may already
            # be parked inside take() when a test pauses, so gating before
            # it would let one item slip through.  A held item is released
            # back to disk (its manifest stays "queued") if a drain cancels
            # us here.
            await self._unpaused.wait()
            handle = item.handle
            handle.mark_running()
            self.handles.persist(handle)

            def apply_progress(event: dict, target: Handle = handle) -> None:
                target.progress["completed"] = (
                    target.progress.get("completed", 0) + event.get("jobs", 1)
                )

            progress = threadsafe_progress(loop, apply_progress)
            before_deaths = self.runner.worker_deaths
            before_quarantined = len(self.runner.quarantined)
            started = time.monotonic()
            remaining = None if item.expires is None else item.expires - started
            if handle.kind == "job":
                coroutine = self.bridge.run_job(item.work, remaining, progress)
            else:
                coroutine = self.bridge.run_spec(item.work, remaining, progress)
            self._inflight = asyncio.ensure_future(coroutine)
            try:
                result = await self._inflight
            except ServiceError as exc:
                handle.mark_failed(exc.code, str(exc))
                self.counters.inc("failed")
            except ReproError as exc:
                handle.mark_failed("simulation-failed", str(exc))
                self.counters.inc("failed")
            except asyncio.CancelledError:
                # Drain cancelled us mid-await; the handle manifest still
                # says "running"→persisted as queued, so a restart resumes.
                self._inflight = None
                self.handles.persist(handle)
                raise
            except Exception as exc:  # noqa: BLE001 - a bug, reported not hidden
                handle.mark_failed("internal", f"{type(exc).__name__}: {exc}")
                self.counters.inc("failed")
            else:
                handle.mark_done(result)
                self.counters.inc("completed")
            finally:
                self._inflight = None
            self.queue.note_service_time(time.monotonic() - started)
            transient = (self.runner.worker_deaths - before_deaths) + (
                len(self.runner.quarantined) - before_quarantined
            )
            self.breaker.record_failures(transient)
            self.handles.persist(handle)

    def pause(self) -> None:
        """Test hook: stop the worker loop taking new queue items."""
        self._unpaused.clear()

    def resume(self) -> None:
        """Undo :meth:`pause`."""
        self._unpaused.set()

    # ------------------------------------------------------------ submission
    def _submit(self, kind: str, payload: Dict[str, Any], tenant: str) -> Handle:
        """Admission path shared by ``POST /jobs`` and ``POST /specs``.

        Synchronous on the event loop: by the time a response is written
        the accounting is final — no await point between the dedup check,
        the breaker check and the queue offer, so concurrent duplicate
        submissions cannot double-admit.
        """
        if self.draining:
            raise ServiceDrainingError(
                "server is draining for shutdown; no new work is admitted"
            )
        deadline = codec.deadline_from_payload(payload)
        canonical = codec.canonical_payload(payload)
        if kind == "job":
            work: Any = codec.job_from_payload(payload)
            handle_id = codec.job_handle(work)
        else:
            work = codec.spec_from_payload(canonical)
            handle_id, _ = codec.spec_handle(work, self.bridge.context_options)

        existing = self.handles.lookup(handle_id)
        if existing is not None and existing.state != FAILED:
            # Dedup: same fingerprint → same handle, one execution, and the
            # response bytes are identical to the first submitter's.
            self.counters.inc("deduped")
            return existing
        # Failed handles are not reused (mirrors the runner's memo): a
        # resubmission is a fresh attempt at possibly-transient work.

        if kind == "job":
            cached = self.cache.get(work.fingerprint())
            if cached is not None:
                # Completed in a previous life: a done handle costs no
                # queue slot and no simulation.
                handle = Handle(handle_id, kind, canonical, tenant)
                handle.mark_done(cached.to_dict())
                self.handles.add(handle)
                self.counters.inc("cache_hits")
                self.counters.inc("accepted")
                return handle

        if not self.breaker.allow():
            self.counters.inc("shed")
            raise CircuitOpenError(
                "circuit breaker is open: the worker pool is failing "
                "(recent worker deaths / quarantined jobs); retry after cooldown",
                retry_after=self.breaker.retry_after(),
            )
        handle = Handle(handle_id, kind, canonical, tenant)
        expires = None if deadline is None else time.monotonic() + deadline
        try:
            self.queue.offer(_QueueItem(handle, work, expires), tenant)
        except AdmissionFullError:
            self.counters.inc("shed")
            raise
        self.handles.add(handle)
        self.counters.inc("accepted")
        return handle

    # --------------------------------------------------------------- metrics
    def metrics_text(self) -> str:
        """The ``GET /metrics`` exposition: one shared-registry render."""
        lines = [self.counters.render(prefix="service_")]
        runner = self.runner
        runner_counters = CounterRegistry({
            "simulated": runner.simulate_count,
            "cache_hits": runner.cache_hits,
            "cache_misses": runner.cache_misses,
            "dedup_hits": runner.dedup_hits,
            "pool_batches": runner.pool_batches,
            "retries": runner.retries,
            "timeouts": runner.timeouts,
            "worker_deaths": runner.worker_deaths,
            "quarantined": len(runner.quarantined),
        })
        lines.append(runner_counters.render(prefix="runner_"))
        gauges = CounterRegistry({
            "queue_depth": len(self.queue),
            "breaker_open": 0 if self.breaker.state == "closed" else 1,
            "draining": 1 if self.draining else 0,
        })
        lines.append(gauges.render())
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------- HTTP front
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, headers, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._respond_error(writer, exc.status, "bad-request", exc.message)
                return
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, OSError):
                return
            self.counters.inc("requests")
            try:
                await self._route(method, target, headers, body, writer)
            except ServiceError as exc:
                await self._respond_error(
                    writer, exc.status, exc.code, str(exc), retry_after=exc.retry_after
                )
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                await self._respond_error(
                    writer, 500, "internal", f"{type(exc).__name__}: {exc}"
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        max_body = self.config.max_body_kib * 1024
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except asyncio.TimeoutError as exc:
            raise _HttpError(400, "timed out reading request head") from exc
        request_lines = head.decode("latin-1").split("\r\n")
        parts = request_lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in request_lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise _HttpError(400, f"bad Content-Length {length_text!r}") from exc
        if length < 0:
            raise _HttpError(400, f"bad Content-Length {length_text!r}")
        if length > max_body:
            raise _HttpError(
                413, f"request body of {length} bytes exceeds the "
                     f"{max_body}-byte limit (--max-body-kib)"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _route(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        tenant = headers.get("x-tenant", DEFAULT_TENANT)

        if method == "GET" and path == "/healthz":
            await self._respond_json(writer, 200, {"status": "ok"})
        elif method == "GET" and path == "/readyz":
            if self.draining:
                raise ServiceDrainingError("draining for shutdown")
            if self.breaker.state == "open":
                raise CircuitOpenError(
                    "circuit breaker open", retry_after=self.breaker.retry_after()
                )
            await self._respond_json(writer, 200, {"status": "ready"})
        elif method == "GET" and path == "/metrics":
            await self._respond_text(writer, 200, self.metrics_text())
        elif method == "POST" and path == "/jobs":
            handle = self._submit("job", dict(codec.parse_body(body)), tenant)
            await self._respond_json(writer, 202, {"handle": handle.handle})
        elif method == "POST" and path == "/specs":
            handle = self._submit("spec", dict(codec.parse_body(body)), tenant)
            await self._respond_json(writer, 202, {"handle": handle.handle})
        elif method == "GET" and path.startswith("/jobs/") and path.endswith("/stream"):
            handle_id = path[len("/jobs/"):-len("/stream")]
            await self._stream_handle(writer, handle_id)
        elif method == "GET" and path.startswith("/jobs/"):
            handle_id = path[len("/jobs/"):]
            handle = self.handles.get(handle_id)
            wait = self._wait_seconds(query)
            if wait and not handle.done:
                try:
                    await asyncio.wait_for(handle.settled.wait(), timeout=wait)
                except asyncio.TimeoutError:
                    pass
            await self._respond_json(writer, 200, handle.status_payload())
        elif path in ("/", "/healthz", "/readyz", "/metrics", "/jobs", "/specs") or (
            path.startswith("/jobs/")
        ):
            raise _as_service_error(405, f"method {method} not allowed on {path}")
        else:
            raise _as_service_error(404, f"no such endpoint: {path}")

    def _wait_seconds(self, query: Dict[str, list]) -> float:
        values = query.get("wait")
        if not values:
            return 0.0
        try:
            wait = float(values[0])
        except ValueError:
            raise InvalidRequestError(f"wait must be a number, got {values[0]!r}") from None
        return max(0.0, min(wait, MAX_WAIT_SECONDS))

    async def _stream_handle(self, writer: asyncio.StreamWriter, handle_id: str) -> None:
        """Server-sent events: periodic state/progress, final event on settle."""
        handle = self.handles.get(handle_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\nConnection: close\r\n\r\n"
        )
        await writer.drain()
        deadline = time.monotonic() + MAX_WAIT_SECONDS
        while True:
            payload = codec.render_json(handle.status_payload())
            writer.write(b"data: " + payload + b"\n\n")
            await writer.drain()
            if handle.done or time.monotonic() >= deadline:
                return
            try:
                await asyncio.wait_for(handle.settled.wait(), timeout=STREAM_INTERVAL)
            except asyncio.TimeoutError:
                pass

    # -------------------------------------------------------------- responses
    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        retry_after: Optional[float] = None,
    ) -> None:
        body = codec.render_json(payload)
        await self._write_response(writer, status, "application/json", body, retry_after)

    async def _respond_text(
        self, writer: asyncio.StreamWriter, status: int, text: str
    ) -> None:
        await self._write_response(
            writer, status, "text/plain; charset=utf-8", text.encode("utf-8"), None
        )

    async def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        try:
            await self._respond_json(
                writer, status, {"error": {"code": code, "message": message}},
                retry_after=retry_after,
            )
        except Exception:  # noqa: BLE001 - peer already gone
            pass

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        retry_after: Optional[float],
    ) -> None:
        reason = _STATUS_REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if retry_after is not None:
            headers.append(f"Retry-After: {max(1, int(retry_after))}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


class _HttpError(Exception):
    """Protocol-level parse failure (before routing)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _as_service_error(status: int, message: str) -> ServiceError:
    error = ServiceError(message)
    error.status = status
    error.code = {404: "unknown-endpoint", 405: "method-not-allowed"}.get(status, "internal")
    return error


def serve(config: ServeConfig) -> int:
    """Blocking entry point for ``python -m repro serve``; returns exit code."""
    service = SweepService(config)
    try:
        return asyncio.run(service.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0


__all__ = [
    "ServeConfig",
    "SweepService",
    "serve",
    "MAX_WAIT_SECONDS",
]
