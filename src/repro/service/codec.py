"""Wire codec for the sweep service: JSON payloads in, canonical bytes out.

The service accepts exactly two kinds of work, both as JSON documents:

* **single jobs** (``POST /jobs``) — a constrained description of one
  :class:`~repro.sim.runner.SimJob`.  The schema deliberately exposes the
  declarative spec layer only (trace by application name, setups by
  organization name, strategies by kind); it never accepts pickled
  objects, file paths, or engine overrides — a payload is data, and a
  malformed one fails here with a 400, never in a worker.
* **experiment specs** (``POST /specs``) — the PR-7 wire format verbatim:
  the same mapping ``python -m repro run-spec`` reads from disk, validated
  by :func:`repro.experiments.spec.spec_from_dict`.

Both kinds reduce to a deterministic **handle**: single jobs use the job
fingerprint the cache already keys on (so N clients submitting the same
job share one execution *and* one cache entry), specs hash the spec
fingerprint together with the canonical execution parameters.  Responses
are rendered with :func:`render_json` — sorted keys, no whitespace — so
duplicate submissions receive byte-identical payloads no matter which
connection served them.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.config import CacheGeometry, CoreConfig, CoreKind, SystemConfig
from repro.common.errors import ConfigurationError, InvalidRequestError, SimulationError
from repro.experiments.spec import ExperimentSpec, spec_from_dict
from repro.resizing.organization import make_config
from repro.sim.runner import (
    DYNAMIC,
    NONE,
    STATIC,
    L1SetupSpec,
    SimJob,
    StrategySpec,
    TraceSpec,
    organization_class,
)
from repro.workloads.profiles import get_profile

#: Default L1 capacity for service-submitted jobs (the paper's 32K L1).
DEFAULT_L1_CAPACITY = 32 * 1024

#: Execution *hints* riding along in a payload: they shape how a request
#: runs (deadline), never what it computes, so they are stripped before
#: handle derivation — the same work under a different deadline is still
#: the same work.
HINT_FIELDS = ("deadline_seconds",)

_JOB_FIELDS = frozenset(
    {
        "trace", "core", "associativity", "d_setup", "i_setup",
        "interval_instructions", "warmup_instructions",
        "sample_every", "sample_warmup",
    }
    | set(HINT_FIELDS)
)
_TRACE_FIELDS = frozenset({"application", "n_instructions", "seed"})
_SETUP_FIELDS = frozenset({"organization", "strategy"})
_STRATEGY_FIELDS = frozenset({
    "kind", "ways", "sets", "miss_bound", "size_bound_bytes",
    "sense_interval_accesses", "downsize_fraction", "settle_intervals",
    "reversal_backoff_intervals",
})


def render_json(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, minimal separators, UTF-8.

    Every response body the service emits goes through here, which is what
    makes deduplicated submissions *byte-identical*: the rendering is a
    pure function of the data, independent of dict insertion order or
    which connection asked.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")


def parse_body(body: bytes) -> Mapping[str, Any]:
    """Decode a request body into a JSON mapping (400 on anything else)."""
    if not body:
        raise InvalidRequestError("request body must be a JSON object; got an empty body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidRequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise InvalidRequestError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _require(payload: Mapping[str, Any], field: str, kinds, what: str):
    value = payload.get(field)
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise InvalidRequestError(f"{what}.{field} must be {kinds_name(kinds)}, got {value!r}")
    return value


def kinds_name(kinds) -> str:
    if isinstance(kinds, tuple):
        return " or ".join(k.__name__ for k in kinds)
    return kinds.__name__


def _check_fields(payload: Mapping[str, Any], known: frozenset, what: str) -> None:
    unknown = set(payload) - known
    if unknown:
        raise InvalidRequestError(
            f"unknown {what} field(s) {sorted(unknown)}; known fields: {sorted(known)}"
        )


def _positive_int(payload: Mapping[str, Any], field: str, default: int, what: str,
                  minimum: int = 1) -> int:
    value = payload.get(field, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise InvalidRequestError(
            f"{what}.{field} must be an integer >= {minimum}, got {value!r}"
        )
    return value


def _trace_from_payload(payload: Mapping[str, Any]) -> TraceSpec:
    if not isinstance(payload, Mapping):
        raise InvalidRequestError("trace must be a mapping")
    _check_fields(payload, _TRACE_FIELDS, "trace")
    application = _require(payload, "application", str, "trace")
    try:
        get_profile(application)
    except Exception as exc:
        raise InvalidRequestError(f"unknown application {application!r}: {exc}") from exc
    n_instructions = _positive_int(payload, "n_instructions", 0, "trace")
    seed = payload.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise InvalidRequestError(f"trace.seed must be an integer or null, got {seed!r}")
    return TraceSpec(application=application, n_instructions=n_instructions, seed=seed)


def _strategy_from_payload(
    payload: Mapping[str, Any], geometry: CacheGeometry, what: str
) -> StrategySpec:
    if not isinstance(payload, Mapping):
        raise InvalidRequestError(f"{what}.strategy must be a mapping")
    _check_fields(payload, _STRATEGY_FIELDS, f"{what}.strategy")
    kind = _require(payload, "kind", str, f"{what}.strategy")
    if kind == NONE:
        return StrategySpec(kind=NONE)
    if kind == STATIC:
        ways = _positive_int(payload, "ways", 0, f"{what}.strategy")
        sets = _positive_int(payload, "sets", 0, f"{what}.strategy")
        return StrategySpec.static(make_config(ways, sets, geometry.block_bytes))
    if kind == DYNAMIC:
        miss_bound = payload.get("miss_bound", 0.0)
        if not isinstance(miss_bound, (int, float)) or isinstance(miss_bound, bool):
            raise InvalidRequestError(
                f"{what}.strategy.miss_bound must be a number, got {miss_bound!r}"
            )
        return StrategySpec.dynamic(
            miss_bound=float(miss_bound),
            size_bound_bytes=_positive_int(
                payload, "size_bound_bytes", 0, f"{what}.strategy", minimum=0
            ),
            sense_interval_accesses=_positive_int(
                payload, "sense_interval_accesses", 16384, f"{what}.strategy"
            ),
            downsize_fraction=float(payload.get("downsize_fraction", 1.0)),
            settle_intervals=_positive_int(
                payload, "settle_intervals", 2, f"{what}.strategy"
            ),
            reversal_backoff_intervals=_positive_int(
                payload, "reversal_backoff_intervals", 8, f"{what}.strategy"
            ),
        )
    raise InvalidRequestError(
        f"{what}.strategy.kind must be one of {NONE!r}, {STATIC!r}, {DYNAMIC!r}; "
        f"got {kind!r}"
    )


def _setup_from_payload(
    payload: Optional[Mapping[str, Any]], geometry: CacheGeometry, what: str
) -> L1SetupSpec:
    if payload is None:
        return L1SetupSpec.fixed()
    if not isinstance(payload, Mapping):
        raise InvalidRequestError(f"{what} must be a mapping")
    _check_fields(payload, _SETUP_FIELDS, what)
    organization = payload.get("organization")
    if organization is None:
        if payload.get("strategy") is not None:
            raise InvalidRequestError(
                f"{what}.strategy requires {what}.organization to be set"
            )
        return L1SetupSpec.fixed()
    if not isinstance(organization, str):
        raise InvalidRequestError(
            f"{what}.organization must be an organization name, got {organization!r}"
        )
    try:
        organization_class(organization)
    except SimulationError as exc:
        raise InvalidRequestError(str(exc)) from exc
    strategy_payload = payload.get("strategy")
    strategy = (
        None
        if strategy_payload is None
        else _strategy_from_payload(strategy_payload, geometry, what)
    )
    return L1SetupSpec(organization=organization, strategy=strategy)


def job_from_payload(payload: Mapping[str, Any]) -> SimJob:
    """Validate a ``POST /jobs`` payload into a :class:`SimJob` (400 on error)."""
    _check_fields(payload, _JOB_FIELDS, "job")
    if "trace" not in payload:
        raise InvalidRequestError("job payload is missing the required 'trace' field")
    trace = _trace_from_payload(payload["trace"])
    core = payload.get("core", CoreKind.OUT_OF_ORDER_NONBLOCKING.value)
    try:
        core_kind = CoreKind(core)
    except ValueError:
        known = ", ".join(kind.value for kind in CoreKind)
        raise InvalidRequestError(
            f"unknown core kind {core!r}; choose from: {known}"
        ) from None
    associativity = _positive_int(payload, "associativity", 2, "job")
    try:
        geometry = CacheGeometry(DEFAULT_L1_CAPACITY, associativity)
        system = SystemConfig(core=CoreConfig(kind=core_kind), l1d=geometry, l1i=geometry)
    except ConfigurationError as exc:
        raise InvalidRequestError(str(exc)) from exc
    job = SimJob(
        trace=trace,
        system=system,
        d_setup=_setup_from_payload(payload.get("d_setup"), geometry, "d_setup"),
        i_setup=_setup_from_payload(payload.get("i_setup"), geometry, "i_setup"),
        interval_instructions=_positive_int(
            payload, "interval_instructions", 1500, "job"
        ),
        warmup_instructions=_positive_int(
            payload, "warmup_instructions", 0, "job", minimum=0
        ),
        sample_every=_positive_int(payload, "sample_every", 1, "job"),
        sample_warmup=_positive_int(payload, "sample_warmup", 0, "job", minimum=0),
    )
    try:
        job.fingerprint()  # impossible setups surface here, not in a worker
    except SimulationError as exc:
        raise InvalidRequestError(str(exc)) from exc
    return job


def spec_from_payload(payload: Mapping[str, Any]) -> ExperimentSpec:
    """Validate a ``POST /specs`` payload (the PR-7 spec wire format)."""
    try:
        return spec_from_dict(payload)
    except ConfigurationError as exc:
        raise InvalidRequestError(str(exc)) from exc


def deadline_from_payload(payload: Mapping[str, Any]) -> Optional[float]:
    """Extract the optional per-request deadline hint (seconds)."""
    deadline = payload.get("deadline_seconds")
    if deadline is None:
        return None
    if not isinstance(deadline, (int, float)) or isinstance(deadline, bool) or (
        deadline <= 0
    ):
        raise InvalidRequestError(
            f"deadline_seconds must be a positive number, got {deadline!r}"
        )
    return float(deadline)


def canonical_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The identity-bearing portion of a payload (hints stripped)."""
    return {key: payload[key] for key in payload if key not in HINT_FIELDS}


def job_handle(job: SimJob) -> str:
    """Handle for a single job: the cache fingerprint itself, prefixed.

    Sharing the cache key is the point — a restarted server (or a second
    one on the same cache directory) resolves the handle straight from the
    job cache without re-simulating.
    """
    return f"job-{job.fingerprint()[:40]}"


def spec_handle(spec: ExperimentSpec, params: Mapping[str, Any]) -> Tuple[str, str]:
    """(handle, digest) for a spec run under canonical execution params.

    The execution parameters (trace length, application subset, sampling
    schedule) change the simulated cells, so they are part of the handle
    identity: the same spec at a different ``--instructions`` is different
    work.
    """
    canonical = json.dumps(
        {"spec": spec.fingerprint(), "params": dict(sorted(params.items()))},
        sort_keys=True, separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return f"spec-{digest[:40]}", digest
