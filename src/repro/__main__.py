"""``python -m repro`` — reproduce the paper's evaluation from the shell.

Examples::

    # One figure, four worker processes, cached under .repro-cache/
    python -m repro run-figure figure4 --jobs 4

    # The whole evaluation (Tables 1-2, Figures 4-9)
    python -m repro run-all --jobs 8

    # Quick smoke run: one application, short traces, no cache
    python -m repro run-figure figure4 --jobs 2 --instructions 2000 \
        --applications gcc --no-cache

    # Replay through the historical per-record loop instead of the
    # columnar fast path (results are bit-identical either way)
    python -m repro run-figure figure4 --engine reference

    # Debug a profiling ladder one configuration at a time instead of the
    # fused single-pass default (results are bit-identical either way)
    python -m repro run-figure figure4 --ladder-mode per-config

    # Run a declarative experiment spec (yours or a committed one) through
    # the design-of-experiments orchestrator
    python -m repro run-spec my_sweep.yaml --jobs 4
    python -m repro run-spec src/repro/experiments/specs/figure4.yaml

    # Gate pytest-benchmark results against the committed perf baseline
    python -m repro bench-compare benchmark-results.json

Experiments execute through the two-phase pipeline: every module first
*enqueues* its whole job set on the shared sweep runner (profiling ladders
and baselines as concrete jobs, dynamic/combined runs as deferred jobs
depending on their profiles), then one drain executes the entire graph in
dependency waves — each wave a single pool batch — so ``--jobs N`` scales
across the whole evaluation.

Because completed simulations are memoised in the job cache (``--cache-dir``,
default ``.repro-cache``), a second invocation of any overlapping sweep only
simulates what changed; a fully warm re-run performs zero new simulations.
Generated traces are memoised alongside under ``<cache-dir>/traces`` in the
binary trace format, so warm runs skip trace generation too; ``--no-cache``
bypasses both memos.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.benchgate import (
    DEFAULT_TOLERANCE,
    compare_benchmarks,
    load_baseline,
    load_benchmark_means,
    write_baseline,
)
from repro.common.errors import ConfigurationError, ReproError
from repro.sim.engine import DEFAULT_ENGINE, available_engines
from repro.sim.sweep import FUSED, LADDER_MODES, PER_CONFIG
from repro.experiments import (
    DoEOrchestrator,
    ExperimentContext,
    builtin_spec_names,
    builtin_spec_path,
    load_spec,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
    table2,
)
from repro.common.atomicio import atomic_write_json
from repro.sim.jobcache import JobCache
from repro.sim.runner import RetryPolicy, SweepRunner, get_trace_cache, set_trace_cache
from repro.workloads.profiles import get_profile

#: Experiment registry: name -> module with run() returning a result object
#: exposing rows() and format_table().  table1 is purely analytic (no
#: simulations) and ignores the context.
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
}

#: CLI default for the on-disk job cache location.
DEFAULT_CACHE_DIR = ".repro-cache"


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    """Parse CLI arguments (exposed separately for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures with the parallel sweep engine.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--jobs", "-j", type=int, default=1,
            help="worker processes for the sweep engine (default: 1, serial)",
        )
        sub.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR,
            help=f"cache directory: completed jobs at its top level, generated "
                 f"traces (binary trace format) under traces/ (default: {DEFAULT_CACHE_DIR})",
        )
        sub.add_argument(
            "--no-cache", action="store_true",
            help="disable the on-disk caches entirely (both the job-result "
                 "cache and the generated-trace memo)",
        )
        sub.add_argument(
            "--engine", choices=available_engines(), default=None,
            help=f"replay engine for the simulator hot loop (default: "
                 f"{DEFAULT_ENGINE}); engines are bit-identical, the choice "
                 f"only affects speed",
        )
        sub.add_argument(
            "--ladder-mode", choices=LADDER_MODES, default=FUSED,
            help=f"how profiling ladders execute (default: {FUSED}): "
                 f"'{FUSED}' decodes each trace once and feeds every rung "
                 f"of the ladder in one fused pass; '{PER_CONFIG}' submits "
                 f"one job per configuration (the debugging path, and the "
                 f"one that honours --engine inside ladders).  Results are "
                 f"bit-identical and both modes share the job cache",
        )
        sub.add_argument(
            "--instructions", type=int, default=60_000,
            help="trace length per application (default: 60000)",
        )
        sub.add_argument(
            "--applications", default=None,
            help="comma-separated application subset (default: all twelve, "
                 "plus any --trace-file workloads)",
        )
        sub.add_argument(
            "--trace-file", action="append", default=[], metavar="[NAME=]PATH",
            help="replay a real trace file (.rtxt text or .rtrc2 binary — see "
                 "docs/TRACE_FORMAT.md) as a workload named NAME (default: the "
                 "file's stem); repeatable.  External workloads join the "
                 "application list and run through every figure like the "
                 "synthetic ones",
        )
        sub.add_argument(
            "--sample-every", type=int, default=1, metavar="N",
            help="interval sampling: simulate every Nth interval instead of "
                 "all of them (default: 1 = exhaustive); sampled results "
                 "carry miss-ratio error bars (docs/SAMPLING.md)",
        )
        sub.add_argument(
            "--sample-warmup", type=int, default=0, metavar="W",
            help="instructions replayed (but not measured) ahead of each "
                 "sampled interval to re-warm cache state after a sampling "
                 "gap (default: 0)",
        )
        sub.add_argument(
            "--output", default=None,
            help="also write every experiment's rows to this JSON file "
                 "(written atomically: readers never observe a torn file)",
        )
        sub.add_argument(
            "--resume", action="store_true",
            help="resume an interrupted run: report the previous attempt's "
                 "checkpoint manifest (<cache-dir>/checkpoint.json), then "
                 "replay the job graph against the job cache so only the "
                 "residue — jobs that had not completed — is simulated.  "
                 "Results are byte-identical to an uninterrupted run.  "
                 "Requires the cache (incompatible with --no-cache)",
        )
        sub.add_argument(
            "--job-timeout", type=float, default=None, metavar="SECONDS",
            help="per-job wall-clock budget; a job over budget has its "
                 "worker killed and is retried like any transient failure "
                 "(default: no timeout).  Only enforced with --jobs > 1",
        )
        sub.add_argument(
            "--job-retries", type=int, default=2, metavar="N",
            help="re-dispatches allowed per job after transient failures — "
                 "worker death, timeout, trace-transport loss (default: 2); "
                 "0 disables retries; a job exhausting its budget is "
                 "quarantined and reported while its batch siblings finish",
        )
        sub.add_argument(
            "--profile", action="store_true",
            help="run the evaluation under cProfile and print the top-20 "
                 "cumulative-time functions (most useful with --jobs 1 "
                 "--no-cache: worker processes and cache hits are invisible "
                 "to the parent's profile)",
        )
        sub.add_argument(
            "--stats", action="store_true",
            help="also print the transport/decode and resilience counter "
                 "lines after the run summary: shared-memory segments "
                 "published, trace bytes pickled to the pool, dedup hits, "
                 "the decode memo / segment-attach counters aggregated from "
                 "the workers, plus retries, timeouts, worker deaths, "
                 "quarantined jobs and self-healed corrupt cache entries",
        )

    run_figure = subparsers.add_parser(
        "run-figure", help="regenerate one or more tables/figures"
    )
    run_figure.add_argument(
        "figures", nargs="+", choices=sorted(EXPERIMENTS), metavar="FIGURE",
        help=f"which experiments to run (choose from: {', '.join(sorted(EXPERIMENTS))})",
    )
    add_common(run_figure)

    run_all = subparsers.add_parser(
        "run-all", help="regenerate the full evaluation (Tables 1-2, Figures 4-9)"
    )
    add_common(run_all)

    run_spec = subparsers.add_parser(
        "run-spec",
        help="run declarative experiment spec files (.yaml/.json) through "
             "the design-of-experiments orchestrator",
    )
    run_spec.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="spec files to run (see docs/EXPERIMENTS.md for the schema; the "
             "committed paper specs live under src/repro/experiments/specs/)",
    )
    add_common(run_spec)

    subparsers.add_parser("list", help="list the available experiments")

    serve = subparsers.add_parser(
        "serve",
        help="run the crash-safe async sweep server (HTTP; docs/SERVICE.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1, loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port to bind; 0 picks a free port and prints it (default: 8765)",
    )
    serve.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the sweep engine (default: 1, serial)",
    )
    serve.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"cache directory; also holds the service's handle manifests "
             f"under service/handles/ (default: {DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded admission queue size; a full queue answers 429 with "
             "Retry-After instead of buffering (default: 64)",
    )
    serve.add_argument(
        "--tenant-queue-limit", type=int, default=None,
        help="per-tenant (X-Tenant header) queue bound inside the global "
             "limit, so one tenant cannot monopolise admission "
             "(default: the global --queue-limit)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="transient failures (worker deaths + quarantined jobs) within "
             "the window that open the circuit breaker (default: 5)",
    )
    serve.add_argument(
        "--breaker-window", type=float, default=60.0,
        help="sliding failure-counting window in seconds (default: 60)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=15.0,
        help="seconds an open breaker sheds new work before half-opening "
             "for a probe request (default: 15)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds a SIGTERM drain waits for the in-flight request "
             "before closing the runner forcefully (default: 10)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget, as in the batch CLI; request "
             "deadlines (deadline_seconds) tighten it per request "
             "(default: no timeout)",
    )
    serve.add_argument(
        "--job-retries", type=int, default=2, metavar="N",
        help="re-dispatches allowed per job after transient failures "
             "(default: 2)",
    )
    serve.add_argument(
        "--instructions", type=int, default=60_000,
        help="trace length per application for spec runs; part of a spec "
             "handle's identity (default: 60000)",
    )
    serve.add_argument(
        "--max-body-kib", type=int, default=256,
        help="largest request body accepted, in KiB (default: 256)",
    )

    bench = subparsers.add_parser(
        "bench-compare",
        help="gate pytest-benchmark results against the committed perf baseline",
    )
    bench.add_argument(
        "results", help="pytest-benchmark JSON output (--benchmark-json=...)"
    )
    bench.add_argument(
        "--baseline", default="benchmarks/baseline.json",
        help="committed baseline file (default: benchmarks/baseline.json)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"relative slowdown tolerated before failing "
             f"(default: {DEFAULT_TOLERANCE:.2f} = ±{DEFAULT_TOLERANCE:.0%})",
    )
    bench.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from these results instead of gating",
    )
    bench.add_argument(
        "--absolute", action="store_true",
        help="compare raw means without dividing out the suite-wide "
             "hardware-speed factor (the median measured/baseline ratio)",
    )
    bench.add_argument(
        "--max-scale", type=float, default=None,
        help="widest hardware-speed factor normalization may absorb before "
             "the gate fails outright (default: 4.0)",
    )

    return parser.parse_args(argv)


def bench_compare(args: argparse.Namespace) -> int:
    """The ``bench-compare`` subcommand: gate results or refresh the baseline."""
    try:
        means = load_benchmark_means(args.results)
        if args.update:
            write_baseline(args.baseline, means)
            print(f"baseline {args.baseline} updated with {len(means)} benchmark(s)")
            return 0
        extra = {} if args.max_scale is None else {"max_scale": args.max_scale}
        comparison = compare_benchmarks(
            means, load_baseline(args.baseline),
            tolerance=args.tolerance, normalize=not args.absolute, **extra,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(comparison.format_report())
    return 0 if comparison.ok else 1


def serve_command(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the sweep service until drained."""
    from repro.service import ServeConfig, serve  # deferred: asyncio stack

    if args.queue_limit < 1:
        print(f"error: --queue-limit must be >= 1, got {args.queue_limit}", file=sys.stderr)
        return 2
    if args.job_retries < 0:
        print(f"error: --job-retries must be >= 0, got {args.job_retries}", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        queue_limit=args.queue_limit,
        tenant_queue_limit=args.tenant_queue_limit,
        breaker_threshold=args.breaker_threshold,
        breaker_window=args.breaker_window,
        breaker_cooldown=args.breaker_cooldown,
        drain_grace=args.drain_grace,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        instructions=args.instructions,
        max_body_kib=args.max_body_kib,
    )
    try:
        return serve(config)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def experiment_names(args: argparse.Namespace) -> List[str]:
    """The experiments an invocation asks for, in canonical order."""
    if args.command == "run-all":
        return list(EXPERIMENTS)
    return list(dict.fromkeys(args.figures))  # de-duplicate, keep order


def parse_trace_files(entries: List[str]) -> Dict[str, str]:
    """Parse ``--trace-file [NAME=]PATH`` entries into a name -> path map."""
    trace_files: Dict[str, str] = {}
    for entry in entries:
        name, sep, path = entry.partition("=")
        if not sep:
            name, path = "", entry
        name = name.strip()
        path = path.strip()
        if not path:
            raise ConfigurationError(f"--trace-file needs a path: {entry!r}")
        if not name:
            name = os.path.splitext(os.path.basename(path))[0]
        if not name:
            raise ConfigurationError(f"cannot derive a workload name from {entry!r}")
        if name in trace_files:
            raise ConfigurationError(f"duplicate --trace-file name {name!r}")
        if not os.path.isfile(path):
            raise ConfigurationError(f"--trace-file {name}: no such file: {path}")
        trace_files[name] = path
    return trace_files


def checkpoint_path_for(cache_dir: str) -> str:
    """Where a run's progress manifest lives (beside the job cache)."""
    return os.path.join(cache_dir, "checkpoint.json")


def build_context(args: argparse.Namespace) -> ExperimentContext:
    """Build the experiment context (runner, caches, applications) for a run."""
    if args.no_cache:
        if getattr(args, "resume", False):
            raise ConfigurationError(
                "--resume needs the job cache (it replays the job graph "
                "against completed entries); it cannot be combined with "
                "--no-cache"
            )
        cache = None
        # Clear any process-level trace memo too: --no-cache means *no*
        # on-disk state is consulted or written, traces included.
        set_trace_cache(None)
        trace_cache = None
        checkpoint = None
    else:
        cache = JobCache(args.cache_dir)
        trace_cache = os.path.join(args.cache_dir, "traces")
        checkpoint = checkpoint_path_for(args.cache_dir)
    if args.job_retries < 0:
        raise ConfigurationError(f"--job-retries must be >= 0, got {args.job_retries}")
    retry_policy = RetryPolicy(
        max_attempts=args.job_retries + 1,
        job_timeout=args.job_timeout,
    )
    runner = SweepRunner(
        jobs=args.jobs,
        cache=cache,
        trace_cache=trace_cache,
        retry_policy=retry_policy,
        checkpoint_path=checkpoint,
    )
    trace_files = parse_trace_files(args.trace_file)
    applications = None
    if args.applications:
        applications = tuple(
            name.strip() for name in args.applications.split(",") if name.strip()
        )
        for name in applications:
            if name not in trace_files:  # external workloads have no profile
                get_profile(name)  # typos fail in milliseconds, not mid-evaluation
    return ExperimentContext(
        n_instructions=args.instructions,
        applications=applications,
        runner=runner,
        engine=args.engine,
        ladder_mode=args.ladder_mode,
        trace_files=trace_files,
        sample_every=args.sample_every,
        sample_warmup=args.sample_warmup,
    )


def prepare_experiments(names: List[str], context: ExperimentContext, echo=print) -> None:
    """Lay out the whole evaluation, then execute it as dependency waves.

    Every named experiment enqueues its full job set on the context's
    runner — profiling ladders and baselines as concrete jobs (phase 1),
    dynamic and combined runs as deferred jobs depending on their profiles
    (phase 2) — before a single simulation starts.  One drain then executes
    phase 1 as one pool batch and phase 2 as another, so ``run-all --jobs
    N`` parallelises across the *entire* figure set instead of one ladder
    at a time.
    """
    started = time.time()
    for name in names:
        module = EXPERIMENTS[name]
        prepare = getattr(module, "prepare", None)
        if prepare is not None:
            prepare(context)
    runner = context.runner
    echo(
        f"two-phase pipeline: {runner.pending_count} profile/baseline execution(s) in "
        f"phase 1 ({runner.fused_rungs} ladder rung(s) riding fused passes), "
        f"{runner.deferred_count} dependent job(s) in phase 2 "
        f"({runner.cache_hits} already served from cache)"
    )
    context.drain()
    echo(
        f"drained in {time.time() - started:.1f}s: {runner.simulate_count} simulated "
        f"across {runner.pool_batches} pool batch(es) on {runner.jobs} worker(s)"
    )


def run_experiments(names: List[str], context: ExperimentContext, echo=print) -> Dict[str, object]:
    """Run the named experiments against ``context``; returns result objects."""
    prepare_experiments(names, context, echo=echo)
    results: Dict[str, object] = {}
    for name in names:
        module = EXPERIMENTS[name]
        started = time.time()
        if name == "table1":
            result = module.run()  # analytic, simulation-free
        else:
            result = module.run(context)
        elapsed = time.time() - started
        echo(f"\n{'=' * 72}\n{name}   [{elapsed:.1f}s]\n{'=' * 72}")
        echo(result.format_table())
        results[name] = result
    return results


def run_spec_experiments(
    paths: List[str], context: ExperimentContext, echo=print
) -> Dict[str, object]:
    """Run declarative spec files through the orchestrator; returns stores.

    Mirrors :func:`run_experiments`'s two-phase shape: every spec's plan is
    enqueued on the shared context before a single simulation starts, one
    drain executes the whole job graph, then each spec is analyzed in turn.
    """
    # Load and validate every file up front so a typo in the last spec
    # fails in milliseconds instead of after the first spec's simulations.
    specs = []
    sources: Dict[str, str] = {}
    for path in paths:
        spec = load_spec(path)
        if spec.name in sources:
            raise ConfigurationError(
                f"duplicate spec name {spec.name!r}: declared by both "
                f"{sources[spec.name]} and {path}"
            )
        sources[spec.name] = path
        specs.append(spec)

    started = time.time()
    orchestrator = DoEOrchestrator(context)
    plans = []
    for spec in specs:
        plan = orchestrator.plan(spec)
        echo(f"{spec.name}: {plan.describe()}  [spec {spec.fingerprint()[:12]}]")
        orchestrator.enqueue(plan)
        plans.append(plan)
    runner = context.runner
    echo(
        f"two-phase pipeline: {runner.pending_count} profile/baseline execution(s) in "
        f"phase 1 ({runner.fused_rungs} ladder rung(s) riding fused passes), "
        f"{runner.deferred_count} dependent job(s) in phase 2 "
        f"({runner.cache_hits} already served from cache)"
    )
    context.drain()
    echo(
        f"drained in {time.time() - started:.1f}s: {runner.simulate_count} simulated "
        f"across {runner.pool_batches} pool batch(es) on {runner.jobs} worker(s)"
    )

    results: Dict[str, object] = {}
    for plan in plans:
        started = time.time()
        store = orchestrator.analyze(orchestrator.run(plan))
        elapsed = time.time() - started
        echo(f"\n{'=' * 72}\n{plan.spec.name}   [{elapsed:.1f}s]\n{'=' * 72}")
        echo(store.format_table())
        results[plan.spec.name] = store
    return results


def _spec_axes_summary(spec) -> str:
    """Compact one-line rendering of a spec's design axes for ``list``."""
    axes = spec.axes
    parts = [",".join(axes.strategies)]
    if axes.organizations:
        parts.append(",".join(axes.organizations))
    parts.append("+".join(axes.targets))
    parts.append("assoc " + ",".join(str(a) for a in axes.associativities))
    if len(axes.core_kinds) > 1:
        parts.append("both cores")
    return " | ".join(parts)


def list_output() -> str:
    """The full ``python -m repro list`` text.

    This is the single source for the CLI inventory: ``main`` prints it and
    ``tools/sync_readme_cli.py`` embeds it verbatim into the README, so the
    two can never drift.
    """
    lines: List[str] = []
    lines.append("experiments (run-figure FIGURE / run-all):")
    for name in EXPERIMENTS:
        lines.append(f"  {name}")
    lines.append(
        "declarative specs (run-spec SPEC; schema in docs/EXPERIMENTS.md):"
    )
    planner = DoEOrchestrator()  # planning never simulates
    for name in builtin_spec_names():
        spec = load_spec(builtin_spec_path(name))
        plan = planner.plan(spec)
        jobs = "analytic" if not plan.cells else f"{plan.job_count} job(s)"
        lines.append(f"  {name:<9} {jobs:>10}  {_spec_axes_summary(spec)}")
    lines.append("replay engines (--engine NAME; bit-identical results, speed only):")
    for name in available_engines():
        suffix = "  [default]" if name == DEFAULT_ENGINE else ""
        lines.append(f"  {name}{suffix}")
    lines.append("ladder modes (--ladder-mode NAME; bit-identical results, speed only):")
    for name in LADDER_MODES:
        if name == FUSED:
            lines.append(f"  {name}  [default]  one trace pass feeds a whole profiling ladder")
        else:
            lines.append(f"  {name}  one job per ladder configuration (debugging path)")
    lines.append(
        "external traces (--trace-file [NAME=]PATH; docs/TRACE_FORMAT.md):\n"
        "  .rtxt   text records, one per line\n"
        "  .rtrc2  binary records, endian-tagged header"
    )
    lines.append(
        "interval sampling (--sample-every N --sample-warmup W; docs/SAMPLING.md):\n"
        "  N > 1 simulates every Nth interval, replaying W warmup\n"
        "  instructions before each; results carry miss-ratio error bars"
    )
    lines.append(
        "caches: completed jobs live in --cache-dir, generated traces in\n"
        "  --cache-dir/traces (binary trace format); --no-cache disables both"
    )
    lines.append(
        "service (serve; crash-safe async sweep server, docs/SERVICE.md):\n"
        "  POST /jobs and /specs return fingerprint-derived handles\n"
        "  (duplicates share one execution); GET /jobs/HANDLE polls,\n"
        "  /jobs/HANDLE/stream streams progress, /metrics exposes counters;\n"
        "  bounded admission answers 429 + Retry-After, SIGTERM drains\n"
        "  gracefully and a restarted server resumes handles from cache"
    )
    return "\n".join(lines)


def resume_note(args: argparse.Namespace) -> Optional[str]:
    """The ``--resume`` banner: what the interrupted attempt had finished.

    The manifest is informational — resume *correctness* comes from the job
    cache (completed jobs replay as cache hits, only the residue
    simulates) — so a missing or unreadable manifest degrades to a note,
    never an error.
    """
    if not getattr(args, "resume", False):
        return None
    path = checkpoint_path_for(args.cache_dir)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return (
            f"resume: no checkpoint manifest at {path}; replaying the job "
            f"graph against the cache from scratch"
        )
    status = "completed" if manifest.get("done") else "interrupted"
    note = (
        f"resume: previous run ({status}) had simulated "
        f"{manifest.get('simulated', 0)} job(s) with {manifest.get('cache_hits', 0)} "
        f"cache hit(s), {manifest.get('pending', 0)} pending and "
        f"{manifest.get('deferred', 0)} deferred at its last checkpoint; "
        f"completed jobs replay from cache, only the residue simulates"
    )
    quarantined = manifest.get("quarantined") or []
    if quarantined:
        lines = [
            note,
            f"resume: the previous attempt quarantined {len(quarantined)} job(s) "
            f"after exhausting their retry budget; they will retry from scratch:",
        ]
        for entry in quarantined:
            if not isinstance(entry, dict):
                continue
            fingerprints = entry.get("fingerprints") or []
            workload = (entry.get("job") or {}).get("workload", "<unknown workload>")
            shown = ", ".join(str(fp)[:12] for fp in fingerprints) or "<no fingerprint>"
            lines.append(
                f"resume:   {workload} [{shown}] after {entry.get('attempts', '?')} "
                f"attempt(s): {entry.get('error', '')}"
            )
        note = "\n".join(lines)
    return note


def resilience_stats_line(runner: SweepRunner) -> str:
    """The fault-tolerance counter line printed with ``--stats``."""
    corrupt = 0
    if runner.cache is not None:
        corrupt += runner.cache.corrupt_entries
    trace_cache = get_trace_cache()
    if trace_cache is not None:
        corrupt += trace_cache.corrupt_entries
    return (
        f"resilience: {runner.retries} retrie(s), {runner.timeouts} timeout(s), "
        f"{runner.worker_deaths} worker death(s), {len(runner.quarantined)} "
        f"quarantined job(s), {corrupt} corrupt cache entr(ies) self-healed"
    )


def transport_stats_line(runner: SweepRunner) -> str:
    """The ``--stats`` counter line for a drained runner.

    Parent-side counters (segments published, trace bytes pickled, dedup
    hits) come straight off the runner; the per-process counters — decode
    memo hits, shared-memory attaches, trace-memo reads — come from
    :attr:`~repro.sim.runner.SweepRunner.worker_stats`, which aggregates
    the per-job deltas reported by whichever process executed each job
    (the workers under ``--jobs N``, this process for inline execution).
    """
    worker = runner.worker_stats
    return (
        f"transport: {runner.shm_segments} shm segment(s) published, "
        f"{runner.trace_bytes_pickled} trace byte(s) pickled, "
        f"{runner.dedup_hits} dedup hit(s); workers: "
        f"{worker.get('shm_attached', 0)} segment attach(es) "
        f"(+{worker.get('shm_attach_reuses', 0)} reuse(s), "
        f"{worker.get('shm_attach_failures', 0)} failure(s)), "
        f"{worker.get('trace_memo_reads', 0)} trace-memo read(s), "
        f"{worker.get('decode_builds', 0)} decode build(s), "
        f"{worker.get('decode_memo_hits', 0)} decode memo hit(s), "
        f"{worker.get('decode_disk_hits', 0)} decode disk hit(s)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = parse_args(argv)

    if args.command == "list":
        print(list_output())
        return 0

    if args.command == "bench-compare":
        return bench_compare(args)

    if args.command == "serve":
        return serve_command(args)

    if args.command == "run-spec":
        names = list(dict.fromkeys(args.specs))  # de-duplicate, keep order
    else:
        names = experiment_names(args)
    if args.output:
        # Fail fast on an unwritable output path instead of discarding a
        # possibly hours-long evaluation at the final write.  The probe file
        # is removed again so a later failure leaves no empty artifact.
        existed = os.path.exists(args.output)
        try:
            with open(args.output, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write --output {args.output}: {exc}", file=sys.stderr)
            return 2
        if not existed:
            try:
                os.remove(args.output)
            except OSError:
                pass

    started = time.time()
    profiler = None
    if args.profile:
        # Profile the whole prepare-and-drain pipeline (simulations, trace
        # generation, result assembly) so future perf work can read the next
        # bottleneck straight off the report instead of ad-hoc scripts.
        import cProfile

        if args.jobs > 1:
            print(
                "--profile note: with --jobs > 1 the simulations run in worker "
                "processes and will not appear in this profile; use --jobs 1.",
                file=sys.stderr,
            )
        profiler = cProfile.Profile()
    context = None
    try:
        context = build_context(args)
        note = resume_note(args)
        if note is not None:
            print(note)

        def execute() -> Dict[str, object]:
            if args.command == "run-spec":
                return run_spec_experiments(names, context)
            return run_experiments(names, context)

        if profiler is not None:
            profiler.enable()
            try:
                results = execute()
            finally:
                profiler.disable()
        else:
            results = execute()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Graceful Ctrl-C: the runner already killed and reaped its pool and
        # unlinked every shared-memory segment (drain's interrupt handler);
        # the job cache holds every completed job, written atomically.  One
        # summary line, no traceback, and the conventional 128+SIGINT code.
        runner = context.runner if context is not None else None
        if runner is not None:
            print(
                f"\ninterrupted: {runner.simulate_count} simulated, "
                f"{runner.cache_hits} served from cache; completed jobs are "
                f"persisted — rerun with --resume to simulate only the rest",
                file=sys.stderr,
            )
        else:
            print("\ninterrupted before any simulation started", file=sys.stderr)
        return 130
    finally:
        # Unlink every published shared-memory segment (and join any pool)
        # even when the evaluation errors out, so no /dev/shm space
        # outlives the process.
        if context is not None:
            context.runner.close()
    elapsed = time.time() - started

    if profiler is not None:
        import pstats

        print(f"\n{'=' * 72}\ncProfile: top 20 by cumulative time\n{'=' * 72}")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats("cumulative").print_stats(20)

    runner = context.runner
    cache_note = "disabled" if runner.cache is None else str(runner.cache.directory)
    print(
        f"\n{len(names)} experiment(s) in {elapsed:.1f}s with {runner.jobs} worker(s): "
        f"{runner.simulate_count} simulated, {runner.cache_hits} served from cache "
        f"(cache: {cache_note}), {runner.pool_batches} pool batch(es), "
        f"{runner.inline_executions} inline, {runner.fused_rungs} ladder rung(s) fused"
    )
    if args.stats:
        print(transport_stats_line(runner))
        print(resilience_stats_line(runner))
    if runner.quarantined:
        print(
            f"warning: {len(runner.quarantined)} job(s) quarantined after "
            f"exhausting their retry budget (see --stats)",
            file=sys.stderr,
        )

    if args.output:
        payload = {name: result.rows() for name, result in results.items()}
        try:
            atomic_write_json(args.output, payload, indent=2, sort_keys=True)
        except OSError as exc:
            print(f"error: cannot write --output {args.output}: {exc}", file=sys.stderr)
            return 2
        print(f"rows written to {args.output}")

    return 0


if __name__ == "__main__":
    sys.exit(main())
