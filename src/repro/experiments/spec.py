"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the data-driven description of one
experiment: a **design space** (the cartesian product of the axes in
:class:`AxesSpec`) plus an **analysis block** (:class:`AnalysisSpec`)
naming the procedure that turns the simulated cells into a report.  The
nine paper figures/tables are committed as spec files under
``src/repro/experiments/specs/`` and user-defined sweeps are ordinary spec
files fed to ``python -m repro run-spec`` — both execute through the same
:class:`repro.experiments.orchestrator.DoEOrchestrator`.

Specs are:

* **dict/YAML-loadable** — :func:`load_spec` reads ``.yaml``/``.yml``/
  ``.json`` files (PyYAML when available, a built-in parser for the
  restricted YAML subset the spec schema needs otherwise), and
  :func:`spec_from_dict` accepts a plain mapping.
* **schema-validated** — unknown keys, wrong types, unregistered
  organizations and impossible axis combinations are rejected at load
  time with a :class:`~repro.common.errors.ConfigurationError`, not
  mid-evaluation.  The normative field reference lives in
  ``docs/EXPERIMENTS.md``, whose tables are asserted against
  :data:`SPEC_FIELDS` / :data:`AXES_FIELDS` / :data:`ANALYSIS_FIELDS` by a
  conformance test.
* **fingerprintable** — :meth:`ExperimentSpec.fingerprint` is the SHA-256
  of the spec's canonical JSON form, stable across load/dump round trips,
  so services and caches can content-address whole experiments.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.common.config import CoreKind
from repro.common.errors import ConfigurationError, SimulationError

#: Schema version this build reads (the ``spec`` top-level field).
SPEC_VERSION = 1

#: Sentinel for "every application the executing context knows about".
ALL_APPLICATIONS = "all"

#: Resizing strategies a spec's ``strategies`` axis may name.
STRATEGY_BASELINE = "baseline"
STRATEGY_STATIC = "static"
STRATEGY_DYNAMIC = "dynamic"
STRATEGY_JOINT_STATIC = "joint-static"
STRATEGIES: Tuple[str, ...] = (
    STRATEGY_BASELINE,
    STRATEGY_STATIC,
    STRATEGY_DYNAMIC,
    STRATEGY_JOINT_STATIC,
)

#: L1 targets a spec's ``targets`` axis may name (the sweep layer's names).
TARGETS: Tuple[str, ...] = ("dcache", "icache")

#: Where the nine committed paper specs live.
BUILTIN_SPEC_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "specs")

_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9_-]*$")

# ---------------------------------------------------------------------------
# Normative field tables.  docs/EXPERIMENTS.md renders these as markdown
# tables and a conformance test asserts doc == code, the same pattern as
# docs/TRACE_FORMAT.md.  Each row: (field, type, required, meaning).
# ---------------------------------------------------------------------------

SPEC_FIELDS: List[Tuple[str, str, str, str]] = [
    ("spec", "int", "yes", "schema version; this build reads 1"),
    ("name", "str", "yes", "experiment identifier (lowercase letters, digits, - and _)"),
    ("title", "str", "no", "human-readable one-line title"),
    ("description", "str", "no", "free-form prose describing the experiment"),
    ("axes", "mapping", "yes", "the design space (see Axes fields)"),
    ("analysis", "mapping", "yes", "how cells become a report (see Analysis fields)"),
]

AXES_FIELDS: List[Tuple[str, str, str, str]] = [
    ("targets", "list[str]", "no", "which L1s are resized: dcache and/or icache (default dcache)"),
    ("organizations", "list[str]", "no",
     "registered resizing organizations (selective-ways, selective-sets, hybrid, or custom)"),
    ("associativities", "list[int]", "no", "base L1 set-associativities (default [2])"),
    ("core_kinds", "list[str]", "no",
     "processor configurations: in-order-blocking and/or out-of-order-nonblocking "
     "(default out-of-order-nonblocking)"),
    ("strategies", "list[str]", "no",
     "resizing strategies: baseline, static, dynamic, joint-static (default [static])"),
    ("applications", "str or list[str]", "no",
     "workload names, or the string all for the executing context's full list (default all)"),
]

ANALYSIS_FIELDS: List[Tuple[str, str, str, str]] = [
    ("kind", "str", "yes",
     "analysis procedure (a registered analyzer name; grid is the generic built-in)"),
    ("parameters", "mapping", "no", "kind-specific options (see the analyzer's documentation)"),
]


# ---------------------------------------------------------------------------
# Minimal YAML-subset loader: used only when PyYAML is unavailable, so
# committed and user spec files keep loading on bare-stdlib installs.
# ---------------------------------------------------------------------------

def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text == "" or text in ("null", "~"):
        return None
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if (text.startswith('"') and text.endswith('"') and len(text) >= 2) or (
        text.startswith("'") and text.endswith("'") and len(text) >= 2
    ):
        return text[1:-1]
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part) for part in inner.split(",")]
    try:
        return int(text, 10)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _strip_comment(line: str) -> str:
    """Drop a trailing comment (outside quotes) from one line."""
    in_quote: Optional[str] = None
    for index, char in enumerate(line):
        if in_quote:
            if char == in_quote:
                in_quote = None
        elif char in ("'", '"'):
            in_quote = char
        elif char == "#":
            return line[:index]
    return line


def _mini_yaml_load(text: str) -> Any:
    """Parse the restricted YAML subset the spec schema uses.

    Supported: nested mappings by 2-space-multiple indentation, ``- item``
    lists of scalars, inline ``[a, b]`` lists, quoted/plain scalars, ints,
    floats, booleans, null, comments and blank lines.  This is NOT a
    general YAML parser — it exists so spec files load without PyYAML.
    """
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append((indent, stripped.strip()))
    if not lines:
        return {}

    def parse_block(start: int, indent: int) -> Tuple[Any, int]:
        if lines[start][1].startswith("- "):
            items: List[Any] = []
            position = start
            while position < len(lines) and lines[position][0] == indent and (
                lines[position][1].startswith("- ")
            ):
                items.append(_parse_scalar(lines[position][1][2:]))
                position += 1
            return items, position
        mapping: Dict[str, Any] = {}
        position = start
        while position < len(lines):
            line_indent, content = lines[position]
            if line_indent < indent:
                break
            if line_indent > indent:
                raise ConfigurationError(
                    f"spec parser: unexpected indentation at {content!r}"
                )
            key, sep, value = content.partition(":")
            if not sep:
                raise ConfigurationError(f"spec parser: expected 'key:' at {content!r}")
            key = key.strip().strip('"').strip("'")
            value = value.strip()
            if value:
                mapping[key] = _parse_scalar(value)
                position += 1
            else:
                position += 1
                if position < len(lines) and lines[position][0] > indent:
                    mapping[key], position = parse_block(position, lines[position][0])
                else:
                    mapping[key] = None
        return mapping, position

    parsed, consumed = parse_block(0, lines[0][0])
    if consumed != len(lines):
        raise ConfigurationError(
            f"spec parser: trailing content at {lines[consumed][1]!r}"
        )
    return parsed


def load_spec_text(text: str) -> Any:
    """Parse spec-file text into plain Python data (YAML when available)."""
    try:
        import yaml  # type: ignore
    except ImportError:
        return _mini_yaml_load(text)
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:  # pragma: no cover - exercised via load_spec
        raise ConfigurationError(f"malformed spec file: {exc}") from exc


# ---------------------------------------------------------------------------
# The spec dataclasses.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AxesSpec:
    """The design space: every combination of these axes is one cell."""

    targets: Tuple[str, ...] = ("dcache",)
    organizations: Tuple[str, ...] = ()
    associativities: Tuple[int, ...] = (2,)
    core_kinds: Tuple[str, ...] = (CoreKind.OUT_OF_ORDER_NONBLOCKING.value,)
    strategies: Tuple[str, ...] = (STRATEGY_STATIC,)
    applications: Union[str, Tuple[str, ...]] = ALL_APPLICATIONS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "targets": list(self.targets),
            "organizations": list(self.organizations),
            "associativities": list(self.associativities),
            "core_kinds": list(self.core_kinds),
            "strategies": list(self.strategies),
            "applications": (
                self.applications
                if isinstance(self.applications, str)
                else list(self.applications)
            ),
        }


@dataclass(frozen=True)
class AnalysisSpec:
    """How simulated cells become a report (rows + text rendering)."""

    kind: str
    parameters: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "parameters": dict(self.parameters)}


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete declarative experiment: identity, design space, analysis."""

    name: str
    axes: AxesSpec
    analysis: AnalysisSpec
    title: str = ""
    description: str = ""
    spec_version: int = SPEC_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form (the fingerprinted representation)."""
        return {
            "spec": self.spec_version,
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "axes": self.axes.to_dict(),
            "analysis": self.analysis.to_dict(),
        }

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON form — stable across round trips."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_axes(self, **overrides: Any) -> "ExperimentSpec":
        """A copy of this spec with some axes replaced (and re-validated).

        This is how the parameterised legacy entry points
        (``figure5.run(context, associativity=8)``) derive their variant
        specs from the committed ones.
        """
        axes = replace(self.axes, **{
            key: tuple(value) if isinstance(value, (list, tuple)) else value
            for key, value in overrides.items()
        })
        spec = replace(self, axes=axes)
        _validate_axes(spec.axes, spec.name)
        return spec


# ---------------------------------------------------------------------------
# Validation.
# ---------------------------------------------------------------------------


def _require_str_list(
    value: Any, what: str, spec_name: str, allow_empty: bool = False
) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigurationError(f"spec {spec_name!r}: {what} must be a list of strings")
    if not value and not allow_empty:
        raise ConfigurationError(f"spec {spec_name!r}: {what} must not be empty")
    return tuple(value)


def _validate_axes(axes: AxesSpec, spec_name: str) -> None:
    for target in axes.targets:
        if target not in TARGETS:
            raise ConfigurationError(
                f"spec {spec_name!r}: unknown target {target!r}; choose from "
                f"{', '.join(TARGETS)}"
            )
    if len(set(axes.targets)) != len(axes.targets):
        raise ConfigurationError(f"spec {spec_name!r}: duplicate targets")
    from repro.sim.runner import organization_class  # deferred: avoids import cycle

    for organization in axes.organizations:
        try:
            organization_class(organization)
        except SimulationError as exc:
            raise ConfigurationError(f"spec {spec_name!r}: {exc}") from exc
    for associativity in axes.associativities:
        if not isinstance(associativity, int) or isinstance(associativity, bool) or (
            associativity < 1
        ):
            raise ConfigurationError(
                f"spec {spec_name!r}: associativities must be positive integers, "
                f"got {associativity!r}"
            )
    known_cores = tuple(kind.value for kind in CoreKind)
    for core in axes.core_kinds:
        if core not in known_cores:
            raise ConfigurationError(
                f"spec {spec_name!r}: unknown core kind {core!r}; choose from "
                f"{', '.join(known_cores)}"
            )
    for strategy in axes.strategies:
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"spec {spec_name!r}: unknown strategy {strategy!r}; choose from "
                f"{', '.join(STRATEGIES)}"
            )
    needs_organization = set(axes.strategies) - {STRATEGY_BASELINE}
    if needs_organization and not axes.organizations:
        raise ConfigurationError(
            f"spec {spec_name!r}: strategies {sorted(needs_organization)} need at "
            f"least one organization"
        )
    if STRATEGY_JOINT_STATIC in axes.strategies and set(axes.targets) != set(TARGETS):
        raise ConfigurationError(
            f"spec {spec_name!r}: the joint-static strategy resizes both L1s, so "
            f"targets must list both dcache and icache"
        )
    if not isinstance(axes.applications, str):
        for application in axes.applications:
            if not isinstance(application, str) or not application:
                raise ConfigurationError(
                    f"spec {spec_name!r}: applications must be workload names"
                )
    elif axes.applications != ALL_APPLICATIONS:
        raise ConfigurationError(
            f"spec {spec_name!r}: applications must be a list of names or the "
            f"string {ALL_APPLICATIONS!r}"
        )


def _axes_from_dict(data: Mapping[str, Any], spec_name: str) -> AxesSpec:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"spec {spec_name!r}: axes must be a mapping")
    known = {name for name, _, _, _ in AXES_FIELDS}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"spec {spec_name!r}: unknown axes field(s) {sorted(unknown)}; known "
            f"fields: {sorted(known)}"
        )
    defaults = AxesSpec()
    targets = (
        _require_str_list(data["targets"], "targets", spec_name)
        if "targets" in data else defaults.targets
    )
    organizations = (
        # Empty is meaningful here (a baseline-only spec resizes nothing);
        # strategies that do need an organization are checked in
        # _validate_axes.
        _require_str_list(
            data["organizations"], "organizations", spec_name, allow_empty=True
        )
        if "organizations" in data else defaults.organizations
    )
    if "associativities" in data:
        raw_assoc = data["associativities"]
        if not isinstance(raw_assoc, (list, tuple)) or not raw_assoc:
            raise ConfigurationError(
                f"spec {spec_name!r}: associativities must be a non-empty list"
            )
        associativities = tuple(raw_assoc)
    else:
        associativities = defaults.associativities
    core_kinds = (
        _require_str_list(data["core_kinds"], "core_kinds", spec_name)
        if "core_kinds" in data else defaults.core_kinds
    )
    strategies = (
        _require_str_list(data["strategies"], "strategies", spec_name)
        if "strategies" in data else defaults.strategies
    )
    applications: Union[str, Tuple[str, ...]] = defaults.applications
    if "applications" in data:
        raw_apps = data["applications"]
        if isinstance(raw_apps, str):
            applications = raw_apps
        else:
            applications = _require_str_list(raw_apps, "applications", spec_name)
    return AxesSpec(
        targets=targets,
        organizations=organizations,
        associativities=associativities,
        core_kinds=core_kinds,
        strategies=strategies,
        applications=applications,
    )


def _analysis_from_dict(data: Mapping[str, Any], spec_name: str) -> AnalysisSpec:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"spec {spec_name!r}: analysis must be a mapping")
    known = {name for name, _, _, _ in ANALYSIS_FIELDS}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"spec {spec_name!r}: unknown analysis field(s) {sorted(unknown)}; "
            f"known fields: {sorted(known)}"
        )
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ConfigurationError(f"spec {spec_name!r}: analysis.kind must be a name")
    parameters = data.get("parameters") or {}
    if not isinstance(parameters, Mapping):
        raise ConfigurationError(
            f"spec {spec_name!r}: analysis.parameters must be a mapping"
        )
    return AnalysisSpec(kind=kind, parameters=dict(parameters))


def spec_from_dict(data: Mapping[str, Any]) -> ExperimentSpec:
    """Validate a plain mapping into an :class:`ExperimentSpec`."""
    if not isinstance(data, Mapping):
        raise ConfigurationError("an experiment spec must be a mapping")
    known = {name for name, _, _, _ in SPEC_FIELDS}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown spec field(s) {sorted(unknown)}; known fields: {sorted(known)}"
        )
    version = data.get("spec")
    if version != SPEC_VERSION:
        raise ConfigurationError(
            f"unsupported spec version {version!r}; this build reads spec: {SPEC_VERSION}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ConfigurationError(
            f"spec name {name!r} must match {_NAME_PATTERN.pattern}"
        )
    title = data.get("title", "")
    description = data.get("description", "")
    for what, value in (("title", title), ("description", description)):
        if not isinstance(value, str):
            raise ConfigurationError(f"spec {name!r}: {what} must be a string")
    if "axes" not in data:
        raise ConfigurationError(f"spec {name!r}: missing required field 'axes'")
    if "analysis" not in data:
        raise ConfigurationError(f"spec {name!r}: missing required field 'analysis'")
    axes = _axes_from_dict(data["axes"], name)
    _validate_axes(axes, name)
    analysis = _analysis_from_dict(data["analysis"], name)
    return ExperimentSpec(
        name=name, axes=axes, analysis=analysis, title=title, description=description,
        spec_version=SPEC_VERSION,
    )


def load_spec(path: str) -> ExperimentSpec:
    """Load and validate one spec file (``.yaml``/``.yml``/``.json``)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path}: {exc}") from exc
    if path.endswith(".json"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed spec file {path}: {exc}") from exc
    else:
        data = load_spec_text(text)
    try:
        return spec_from_dict(data)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path}: {exc}") from exc


def builtin_spec_path(name: str) -> str:
    """Path of one committed spec file under ``experiments/specs/``."""
    return os.path.join(BUILTIN_SPEC_DIR, f"{name}.yaml")


def load_builtin_spec(name: str) -> ExperimentSpec:
    """Load one of the committed paper specs by experiment name."""
    spec = load_spec(builtin_spec_path(name))
    if spec.name != name:
        raise ConfigurationError(
            f"committed spec file {builtin_spec_path(name)} declares name "
            f"{spec.name!r}; expected {name!r}"
        )
    return spec


def builtin_spec_names() -> List[str]:
    """Names of every committed spec, in the canonical evaluation order."""
    names = sorted(
        os.path.splitext(entry)[0]
        for entry in os.listdir(BUILTIN_SPEC_DIR)
        if entry.endswith(".yaml")
    )
    # Tables lead the paper's evaluation section; keep that presentation
    # order (it is also the historical EXPERIMENTS registry order).
    tables = [name for name in names if name.startswith("table")]
    figures = [name for name in names if not name.startswith("table")]
    return tables + figures
