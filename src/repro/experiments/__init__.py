"""Experiment harnesses regenerating the paper's tables and figures.

Every experiment is described by a declarative :class:`ExperimentSpec`
committed under ``experiments/specs/`` and executes through the
:class:`DoEOrchestrator`'s plan → run → analyze phases.  The modules below
are thin shims kept for their historical entry points: each exposes
``spec()`` (the committed spec, axis overrides applied), ``prepare(context)``
(enqueue-only, for the two-phase CLI pipeline) and ``run(context)``
returning the same result object as ever — the module's analyzer, registered
for the spec's ``analysis.kind``, rebuilds it from the drained context.  The
shared :class:`repro.experiments.context.ExperimentContext` memoises traces,
baselines and profiling sweeps so that experiments which reuse the same runs
(e.g. Figures 4, 5 and 6) do not repeat work within one process.

=================  =========================================================
module             paper content
=================  =========================================================
``table1``         hybrid size/associativity lattice (Table 1)
``table2``         base system configuration and energy breakdown (Table 2)
``figure4``        selective-ways vs selective-sets mean E·D reduction
``figure5``        per-application ways vs sets detail at 4-way
``figure6``        hybrid organization vs both baselines
``figure7``        d-cache static vs dynamic resizing, two core types
``figure8``        i-cache static vs dynamic resizing, two core types
``figure9``        simultaneous d- and i-cache resizing (additivity)
=================  =========================================================
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.orchestrator import (
    DoEOrchestrator,
    ExperimentPlan,
    GridResult,
    PlanCell,
    ResultStore,
    RunResults,
    register_analyzer,
    registered_kinds,
)
from repro.experiments.spec import (
    AnalysisSpec,
    AxesSpec,
    ExperimentSpec,
    builtin_spec_names,
    builtin_spec_path,
    load_builtin_spec,
    load_spec,
    spec_from_dict,
)
from repro.experiments import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
    table2,
)

__all__ = [
    "ExperimentContext",
    "DoEOrchestrator",
    "ExperimentPlan",
    "ExperimentSpec",
    "AxesSpec",
    "AnalysisSpec",
    "GridResult",
    "PlanCell",
    "ResultStore",
    "RunResults",
    "register_analyzer",
    "registered_kinds",
    "builtin_spec_names",
    "builtin_spec_path",
    "load_builtin_spec",
    "load_spec",
    "spec_from_dict",
    "table1",
    "table2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
]
