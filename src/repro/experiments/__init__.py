"""Experiment harnesses regenerating the paper's tables and figures.

Every module in this package reproduces one piece of the paper's evaluation
section and exposes a ``run(context)`` function returning a result object
with ``rows()`` (raw numbers) and ``format_table()`` (text rendering).  The
shared :class:`repro.experiments.context.ExperimentContext` memoises traces,
baselines and profiling sweeps so that figures which reuse the same runs
(e.g. Figures 4, 5 and 6) do not repeat work within one process.

=================  =========================================================
module             paper content
=================  =========================================================
``table1``         hybrid size/associativity lattice (Table 1)
``table2``         base system configuration and energy breakdown (Table 2)
``figure4``        selective-ways vs selective-sets mean E·D reduction
``figure5``        per-application ways vs sets detail at 4-way
``figure6``        hybrid organization vs both baselines
``figure7``        d-cache static vs dynamic resizing, two core types
``figure8``        i-cache static vs dynamic resizing, two core types
``figure9``        simultaneous d- and i-cache resizing (additivity)
=================  =========================================================
"""

from repro.experiments.context import ExperimentContext
from repro.experiments import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
    table2,
)

__all__ = [
    "ExperimentContext",
    "table1",
    "table2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
]
