"""Table 1 — the hybrid organization's size/associativity lattice.

The paper's Table 1 shows, for a 32K 4-way set-associative cache with 1K
subarrays, every cache size the hybrid selective-sets-and-ways organization
offers and which associativities can reach each size.  The lattice is
regenerated analytically (no simulation involved) together with the
resizing ladder the hybrid actually uses (highest associativity per
redundant size).

The geometry lives in ``specs/table1.yaml`` as ``analysis.parameters``; the
``size-lattice`` analyzer registered here is *analytic*, so the plan for
this spec enumerates zero simulation cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.common.config import CacheGeometry
from repro.common.units import KIB, format_size
from repro.experiments.orchestrator import DoEOrchestrator, RunResults, register_analyzer
from repro.experiments.spec import AnalysisSpec, ExperimentSpec, load_builtin_spec
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.organization import SizeConfig
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays


def spec(
    capacity_bytes: int = 32 * KIB,
    associativity: int = 4,
    subarray_bytes: int = KIB,
    block_bytes: int = 32,
) -> ExperimentSpec:
    """The committed spec, optionally re-pointed at another geometry."""
    loaded = load_builtin_spec("table1")
    parameters = {
        "capacity_bytes": capacity_bytes,
        "associativity": associativity,
        "subarray_bytes": subarray_bytes,
        "block_bytes": block_bytes,
    }
    if dict(loaded.analysis.parameters) == parameters:
        return loaded
    return replace(
        loaded, analysis=AnalysisSpec(kind=loaded.analysis.kind, parameters=parameters)
    )


@dataclass
class Table1Result:
    """The regenerated Table 1 plus the three organizations' size spectra."""

    geometry: CacheGeometry
    hybrid_table: Dict[int, Dict[int, SizeConfig]]
    hybrid_ladder: List[SizeConfig]
    selective_ways_sizes: List[int]
    selective_sets_sizes: List[int]
    hybrid_sizes: List[int]
    rendered: str = field(default="")

    def rows(self) -> List[dict]:
        """One row per way-capacity, mirroring the printed table."""
        rows = []
        for way_capacity in sorted(self.hybrid_table, reverse=True):
            row = {"way_capacity": way_capacity}
            for ways, config in self.hybrid_table[way_capacity].items():
                row[f"{ways}-way"] = config.capacity_bytes
            rows.append(row)
        return rows

    def format_table(self) -> str:
        """Text rendering of the lattice plus the per-organization spectra."""
        lines = [
            f"Table 1 — hybrid resizing granularity for a {self.geometry.describe()} cache",
            "",
            self.rendered,
            "",
            "Offered sizes:",
            "  selective-ways : " + ", ".join(format_size(s) for s in self.selective_ways_sizes),
            "  selective-sets : " + ", ".join(format_size(s) for s in self.selective_sets_sizes),
            "  hybrid         : " + ", ".join(format_size(s) for s in self.hybrid_sizes),
            "",
            "Hybrid resizing ladder (highest associativity per size):",
            "  " + " -> ".join(config.label for config in self.hybrid_ladder),
        ]
        return "\n".join(lines)


@register_analyzer("size-lattice", analytic=True)
def build_result(results: RunResults) -> Table1Result:
    """Derive the lattice from the spec's geometry parameters alone."""
    parameters = results.spec.analysis.parameters
    geometry = CacheGeometry(
        capacity_bytes=parameters.get("capacity_bytes", 32 * KIB),
        associativity=parameters.get("associativity", 4),
        block_bytes=parameters.get("block_bytes", 32),
        subarray_bytes=parameters.get("subarray_bytes", KIB),
    )
    hybrid = HybridSetsAndWays(geometry)
    ways = SelectiveWays(geometry)
    sets = SelectiveSets(geometry)
    return Table1Result(
        geometry=geometry,
        hybrid_table=hybrid.size_table(),
        hybrid_ladder=hybrid.ladder(),
        selective_ways_sizes=ways.distinct_sizes,
        selective_sets_sizes=sets.distinct_sizes,
        hybrid_sizes=hybrid.distinct_sizes,
        rendered=hybrid.format_size_table(),
    )


def prepare(context=None) -> None:
    """Table 1 is analytic — nothing to enqueue.  Present so the two-phase
    harness can treat every experiment module uniformly."""


def run(
    capacity_bytes: int = 32 * KIB,
    associativity: int = 4,
    subarray_bytes: int = KIB,
    block_bytes: int = 32,
) -> Table1Result:
    """Regenerate Table 1 for the given cache geometry (paper default: 32K 4-way)."""
    variant = spec(capacity_bytes, associativity, subarray_bytes, block_bytes)
    return DoEOrchestrator().execute(variant).result
