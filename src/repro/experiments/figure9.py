"""Figure 9 — resizing the d-cache and i-cache together (additivity).

Figure 9 uses static selective-sets resizing on the base system (32K 2-way
L1s, out-of-order core) and compares, per application, resizing the d-cache
alone, the i-cache alone, and both simultaneously.  Average cache size is
normalised to the *sum* of the two base L1 capacities.  The paper's
findings: the savings are essentially additive (the two caches' footprints
in L2 barely interact), the combined average processor energy-delay
reduction is about 20 %, and a few applications save even more than the sum
because downsizing one cache moves the bottleneck toward it and lets the
other cache shrink more cheaply.

The design space lives in ``specs/figure9.yaml`` (the ``joint-static``
strategy implies both targets' profiling ladders plus the combined run);
this module registers the ``joint-resizing`` analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.context import D_CACHE, I_CACHE, SELECTIVE_SETS, ExperimentContext
from repro.experiments.orchestrator import DoEOrchestrator, RunResults, register_analyzer
from repro.experiments.spec import ExperimentSpec, load_builtin_spec


def spec(associativity: int = 2, organization: str = SELECTIVE_SETS) -> ExperimentSpec:
    """The committed spec, optionally re-pointed at other axes."""
    loaded = load_builtin_spec("figure9")
    if (
        associativity == loaded.axes.associativities[0]
        and organization == loaded.axes.organizations[0]
    ):
        return loaded
    return loaded.with_axes(
        associativities=[associativity], organizations=[organization]
    )


@dataclass
class JointResizingRow:
    """Figure 9 numbers for one application."""

    application: str
    dcache_size_reduction: float
    icache_size_reduction: float
    both_size_reduction: float
    dcache_energy_delay_reduction: float
    icache_energy_delay_reduction: float
    both_energy_delay_reduction: float
    both_slowdown: float = 0.0

    @property
    def stacked_energy_delay_reduction(self) -> float:
        """Sum of the two individual reductions (the 'stacked bar' of the figure)."""
        return self.dcache_energy_delay_reduction + self.icache_energy_delay_reduction

    @property
    def additivity_gap(self) -> float:
        """Combined minus stacked reduction (≈0 when the savings are additive)."""
        return self.both_energy_delay_reduction - self.stacked_energy_delay_reduction


@dataclass
class Figure9Result:
    """Per-application joint-resizing results plus the averages."""

    organization: str
    associativity: int
    applications: List[JointResizingRow] = field(default_factory=list)

    def average(self) -> JointResizingRow:
        """The AVG. entry."""
        rows = self.applications
        count = max(1, len(rows))
        return JointResizingRow(
            application="AVG.",
            dcache_size_reduction=sum(r.dcache_size_reduction for r in rows) / count,
            icache_size_reduction=sum(r.icache_size_reduction for r in rows) / count,
            both_size_reduction=sum(r.both_size_reduction for r in rows) / count,
            dcache_energy_delay_reduction=(
                sum(r.dcache_energy_delay_reduction for r in rows) / count
            ),
            icache_energy_delay_reduction=(
                sum(r.icache_energy_delay_reduction for r in rows) / count
            ),
            both_energy_delay_reduction=sum(r.both_energy_delay_reduction for r in rows) / count,
            both_slowdown=sum(r.both_slowdown for r in rows) / count,
        )

    def mean_additivity_gap(self) -> float:
        """Mean absolute gap between combined and stacked reductions (points)."""
        rows = self.applications
        if not rows:
            return 0.0
        return sum(abs(r.additivity_gap) for r in rows) / len(rows)

    def rows(self) -> List[dict]:
        """Flat rows (AVG. included)."""
        flat = []
        for row in self.applications + [self.average()]:
            flat.append(
                {
                    "application": row.application,
                    "d_size_reduction": row.dcache_size_reduction,
                    "i_size_reduction": row.icache_size_reduction,
                    "both_size_reduction": row.both_size_reduction,
                    "d_ed_reduction": row.dcache_energy_delay_reduction,
                    "i_ed_reduction": row.icache_energy_delay_reduction,
                    "both_ed_reduction": row.both_energy_delay_reduction,
                }
            )
        return flat

    def format_table(self) -> str:
        """Text rendering mirroring the figure's two panels."""
        lines = [
            f"Figure 9 — decoupled d-cache and i-cache resizings "
            f"(static {self.organization}, {self.associativity}-way base)",
            "",
            f"{'application':<12}{'d size%':>10}{'i size%':>10}{'both size%':>12}"
            f"{'d E·D%':>10}{'i E·D%':>10}{'both E·D%':>12}{'d+i E·D%':>11}",
        ]
        for row in self.applications + [self.average()]:
            lines.append(
                f"{row.application:<12}{row.dcache_size_reduction:>10.1f}"
                f"{row.icache_size_reduction:>10.1f}{row.both_size_reduction:>12.1f}"
                f"{row.dcache_energy_delay_reduction:>10.1f}"
                f"{row.icache_energy_delay_reduction:>10.1f}"
                f"{row.both_energy_delay_reduction:>12.1f}"
                f"{row.stacked_energy_delay_reduction:>11.1f}"
            )
        return "\n".join(lines)


@register_analyzer("joint-resizing")
def build_result(results: RunResults) -> Figure9Result:
    """Shape drained joint cells (and their implied profiles) into the figure."""
    axes = results.spec.axes
    context = results.context
    organization = axes.organizations[0]
    associativity = axes.associativities[0]
    result = Figure9Result(organization=organization, associativity=associativity)
    for application in results.applications:
        baseline = context.baseline(application, associativity)
        d_profile = context.static_profile(
            application, organization, target=D_CACHE, associativity=associativity
        )
        i_profile = context.static_profile(
            application, organization, target=I_CACHE, associativity=associativity
        )

        # Resize both caches simultaneously, each at its individually
        # profiled best static size (how a deployment would combine them).
        both = context.joint_static_run(application, organization, associativity)

        # Size reductions follow the figure's normalisation: each cache's
        # enabled size over the *sum* of the two base capacities.
        total_capacity = float(baseline.full_l1d_capacity + baseline.full_l1i_capacity)
        d_alone = d_profile.best_result
        i_alone = i_profile.best_result
        d_size_reduction = (
            (baseline.full_l1d_capacity - d_alone.average_l1d_capacity) / total_capacity * 100.0
        )
        i_size_reduction = (
            (baseline.full_l1i_capacity - i_alone.average_l1i_capacity) / total_capacity * 100.0
        )
        result.applications.append(
            JointResizingRow(
                application=application,
                dcache_size_reduction=d_size_reduction,
                icache_size_reduction=i_size_reduction,
                both_size_reduction=both.combined_size_reduction(),
                dcache_energy_delay_reduction=d_alone.energy_delay_reduction(baseline),
                icache_energy_delay_reduction=i_alone.energy_delay_reduction(baseline),
                both_energy_delay_reduction=both.energy_delay_reduction(baseline),
                both_slowdown=both.slowdown_vs(baseline),
            )
        )
    return result


def prepare(
    context: ExperimentContext,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> None:
    """Enqueue every simulation Figure 9 needs without executing any.

    The d- and i-cache profiling ladders are concrete jobs (phase 1); each
    application's combined d+i run is deferred on both of its profiles
    (phase 2), since it fixes each cache at the profiled best size.
    """
    orchestrator = DoEOrchestrator(context)
    orchestrator.enqueue(orchestrator.plan(spec(associativity, organization)))


def run(
    context: Optional[ExperimentContext] = None,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> Figure9Result:
    """Regenerate Figure 9 (static selective-sets on the base system by default)."""
    return DoEOrchestrator(context).execute(spec(associativity, organization)).result
