"""The design-of-experiments orchestrator: plan → run → analyze.

Every experiment — the nine committed paper figures/tables and any
user-supplied spec file — executes through the same three explicit phases:

* :meth:`DoEOrchestrator.plan` enumerates the spec's design space into an
  :class:`ExperimentPlan`: one :class:`PlanCell` per (strategy ×
  application × axes) combination, plus dedup statistics against the
  shared-future memo and a cold-cache simulation estimate.  Planning never
  simulates (and never enqueues), so a plan is inspectable for free —
  ``python -m repro list`` prints each committed spec's job count this way.
* :meth:`DoEOrchestrator.run` enqueues each cell's futures on the
  :class:`~repro.experiments.context.ExperimentContext` (which dedups
  against everything already enqueued), drains the runner's job graph in
  dependency waves, and collects one standardized record per cell.
* :meth:`DoEOrchestrator.analyze` hands the run to the analyzer registered
  for the spec's ``analysis.kind`` and wraps the report in a
  :class:`ResultStore`.  The nine figure/table analyzers live in their
  historical modules and rebuild the exact legacy result objects, so the
  spec-driven path emits byte-identical JSON; the generic ``grid`` analyzer
  (registered here) serves ad-hoc user sweeps.

:meth:`DoEOrchestrator.execute` chains the three phases for callers that
do not need to introspect the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.common.config import CoreKind
from repro.common.errors import ConfigurationError
from repro.experiments.context import D_CACHE, ExperimentContext
from repro.experiments.spec import (
    STRATEGY_BASELINE,
    STRATEGY_DYNAMIC,
    STRATEGY_JOINT_STATIC,
    STRATEGY_STATIC,
    ExperimentSpec,
)

#: Energy-consuming structures a baseline record reports fractions for.
ENERGY_STRUCTURES: Tuple[str, ...] = ("l1d", "l1i", "l2", "memory", "core")

_DEFAULT_CORE = CoreKind.OUT_OF_ORDER_NONBLOCKING.value


# ---------------------------------------------------------------------------
# Analyzer registry.  Figure/table modules register their report builders at
# import time; ``grid`` (below) is the generic built-in for user specs.
# ---------------------------------------------------------------------------

Analyzer = Callable[["RunResults"], Any]


@dataclass(frozen=True)
class AnalyzerInfo:
    """One registered analysis kind."""

    kind: str
    build: Analyzer
    #: Analytic kinds (Table 1's size lattice) derive their report from the
    #: spec's parameters alone — the plan enumerates zero simulation cells.
    analytic: bool = False


_ANALYZERS: Dict[str, AnalyzerInfo] = {}


def register_analyzer(kind: str, analytic: bool = False) -> Callable[[Analyzer], Analyzer]:
    """Register the report builder for one ``analysis.kind`` value."""

    def decorator(build: Analyzer) -> Analyzer:
        existing = _ANALYZERS.get(kind)
        if existing is not None and existing.build is not build:
            raise ConfigurationError(
                f"analysis kind {kind!r} is already registered to "
                f"{existing.build.__module__}.{existing.build.__qualname__}"
            )
        _ANALYZERS[kind] = AnalyzerInfo(kind=kind, build=build, analytic=analytic)
        return build

    return decorator


def analyzer_info(kind: str) -> AnalyzerInfo:
    """Resolve one analysis kind, importing the built-in analyzers lazily."""
    if kind not in _ANALYZERS:
        # The nine figure/table analyzers register when their modules import;
        # importing the package here (not at module top) avoids a cycle.
        import repro.experiments  # noqa: F401
    try:
        return _ANALYZERS[kind]
    except KeyError:
        known = ", ".join(sorted(_ANALYZERS))
        raise ConfigurationError(
            f"unknown analysis kind {kind!r}; registered kinds: {known}"
        ) from None


def registered_kinds() -> List[str]:
    """Every registered analysis kind (built-ins included)."""
    import repro.experiments  # noqa: F401

    return sorted(_ANALYZERS)


# ---------------------------------------------------------------------------
# Plans.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanCell:
    """One point of a spec's design space (one strategy on one workload)."""

    strategy: str
    application: str
    associativity: int
    core_kind: str
    target: Optional[str] = None  # None: baseline (no resizing) / joint (both)
    organization: Optional[str] = None  # None: baseline


@dataclass
class ExperimentPlan:
    """The enumerated design space plus dedup statistics — nothing has run."""

    spec: ExperimentSpec
    cells: List[PlanCell]
    applications: Tuple[str, ...]
    #: Future requests the cells imply, duplicates included (a dynamic cell
    #: requests its profile and baseline too).
    requested_futures: int
    #: Job-graph nodes after the context's memo collapses shared requests.
    unique_futures: int
    #: Simulations a fully cold cache would execute (ladders counted rung
    #: by rung).
    estimated_simulations: int

    @property
    def job_count(self) -> int:
        """Unique job-graph nodes — the number ``list`` and ``run-spec`` print."""
        return self.unique_futures

    @property
    def dedup_savings(self) -> int:
        """Future requests absorbed by the shared memo."""
        return self.requested_futures - self.unique_futures

    def describe(self) -> str:
        """One-line human summary of the plan."""
        return (
            f"{len(self.cells)} cell(s) over {len(self.applications)} "
            f"application(s) -> {self.unique_futures} job(s) "
            f"({self.requested_futures} requested, {self.dedup_savings} shared), "
            f"~{self.estimated_simulations} cold simulation(s)"
        )


def _enumerate_cells(
    spec: ExperimentSpec, applications: Tuple[str, ...]
) -> Iterator[PlanCell]:
    """Deterministic cell order: strategy-major, applications innermost."""
    axes = spec.axes
    for strategy in axes.strategies:
        if strategy == STRATEGY_BASELINE:
            for associativity in axes.associativities:
                for core_kind in axes.core_kinds:
                    for application in applications:
                        yield PlanCell(strategy, application, associativity, core_kind)
        elif strategy == STRATEGY_JOINT_STATIC:
            # Joint runs resize both L1s on the base core (the paper's
            # Figure 9 shape); the targets axis is implied, the core fixed.
            for associativity in axes.associativities:
                for organization in axes.organizations:
                    for application in applications:
                        yield PlanCell(
                            strategy, application, associativity, _DEFAULT_CORE,
                            organization=organization,
                        )
        else:
            for associativity in axes.associativities:
                for target in axes.targets:
                    for organization in axes.organizations:
                        for core_kind in axes.core_kinds:
                            for application in applications:
                                yield PlanCell(
                                    strategy, application, associativity, core_kind,
                                    target=target, organization=organization,
                                )


# ---------------------------------------------------------------------------
# Run results and the result store.
# ---------------------------------------------------------------------------


@dataclass
class RunResults:
    """A drained plan: the executing context plus one record per cell."""

    plan: ExperimentPlan
    context: ExperimentContext
    records: List[dict]

    @property
    def spec(self) -> ExperimentSpec:
        return self.plan.spec

    @property
    def applications(self) -> Tuple[str, ...]:
        return self.plan.applications


@dataclass
class ResultStore:
    """Analyzed experiment: standardized records plus the shaped report.

    ``result`` is the report object the spec's analyzer built — for the
    committed paper specs, the exact legacy result class
    (``Figure4Result``, ``Table2Result``, …) — and :meth:`rows` /
    :meth:`format_table` delegate to it, so one row-shaping implementation
    serves both the historical module API and the spec-driven path.
    """

    spec: ExperimentSpec
    records: List[dict]
    result: Any

    def rows(self) -> List[dict]:
        """The report's rows (the JSON payload ``--output`` writes)."""
        return self.result.rows()

    def format_table(self) -> str:
        """The report's text rendering."""
        return self.result.format_table()

    def to_payload(self) -> Dict[str, List[dict]]:
        """The ``--output`` JSON fragment for this experiment."""
        return {self.spec.name: self.rows()}


# ---------------------------------------------------------------------------
# The orchestrator.
# ---------------------------------------------------------------------------


class DoEOrchestrator:
    """Plan, run and analyze declarative experiments on a shared context."""

    def __init__(self, context: Optional[ExperimentContext] = None) -> None:
        self._context = context

    @property
    def context(self) -> ExperimentContext:
        """The executing context (created lazily for analytic-only use)."""
        if self._context is None:
            self._context = ExperimentContext()
        return self._context

    # ------------------------------------------------------------------ plan
    def plan(self, spec: ExperimentSpec) -> ExperimentPlan:
        """Enumerate the spec's design space without enqueueing anything."""
        info = analyzer_info(spec.analysis.kind)  # unknown kinds fail here
        if info.analytic:
            applications: Tuple[str, ...] = ()
            cells: List[PlanCell] = []
        else:
            applications = self._applications(spec)
            cells = list(_enumerate_cells(spec, applications))

        # Mirror the context's memo keys to count the collapsed job graph.
        baselines: Set[tuple] = set()
        profiles: Set[tuple] = set()
        dynamics: Set[tuple] = set()
        joints: Set[tuple] = set()
        requested = 0
        for cell in cells:
            if cell.strategy == STRATEGY_BASELINE:
                requested += 1
                baselines.add((cell.application, cell.associativity, cell.core_kind))
            elif cell.strategy == STRATEGY_STATIC:
                requested += 2  # the profile plus the baseline it compares to
                baselines.add((cell.application, cell.associativity, cell.core_kind))
                profiles.add(
                    (cell.application, cell.organization, cell.target,
                     cell.associativity, cell.core_kind)
                )
            elif cell.strategy == STRATEGY_DYNAMIC:
                requested += 3  # dynamic run + the profile it derives from + baseline
                baselines.add((cell.application, cell.associativity, cell.core_kind))
                profiles.add(
                    (cell.application, cell.organization, cell.target,
                     cell.associativity, cell.core_kind)
                )
                dynamics.add(
                    (cell.application, cell.organization, cell.target,
                     cell.associativity, cell.core_kind)
                )
            else:  # joint-static: both profiles, their baseline, the joint run
                requested += 4
                baselines.add((cell.application, cell.associativity, _DEFAULT_CORE))
                for target in ("dcache", "icache"):
                    profiles.add(
                        (cell.application, cell.organization, target,
                         cell.associativity, _DEFAULT_CORE)
                    )
                joints.add((cell.application, cell.organization, cell.associativity))

        estimated = len(baselines) + len(dynamics) + len(joints)
        for _, organization, _, associativity, _ in profiles:
            # Organizations are memoised and analytic — no simulation here.
            ladder = self.context.organization(organization, associativity).ladder()
            estimated += len(ladder)

        return ExperimentPlan(
            spec=spec,
            cells=cells,
            applications=applications,
            requested_futures=requested,
            unique_futures=len(baselines) + len(profiles) + len(dynamics) + len(joints),
            estimated_simulations=estimated,
        )

    def _applications(self, spec: ExperimentSpec) -> Tuple[str, ...]:
        if isinstance(spec.axes.applications, str):  # the "all" sentinel
            return tuple(self.context.applications)
        return tuple(spec.axes.applications)

    # --------------------------------------------------------------- enqueue
    def enqueue(self, plan: ExperimentPlan) -> None:
        """Enqueue every cell's futures; the memo dedups, nothing executes."""
        context = self.context
        for cell in plan.cells:
            core_kind = CoreKind(cell.core_kind)
            if cell.strategy == STRATEGY_BASELINE:
                context.baseline_future(cell.application, cell.associativity, core_kind)
            elif cell.strategy == STRATEGY_STATIC:
                context.profile_future(
                    cell.application, cell.organization, target=cell.target,
                    associativity=cell.associativity, core_kind=core_kind,
                )
            elif cell.strategy == STRATEGY_DYNAMIC:
                context.dynamic_future(
                    cell.application, cell.organization, target=cell.target,
                    associativity=cell.associativity, core_kind=core_kind,
                )
            else:  # joint-static
                context.joint_static_future(
                    cell.application, cell.organization, cell.associativity
                )

    # ------------------------------------------------------------------- run
    def run(self, plan: ExperimentPlan) -> RunResults:
        """Enqueue (idempotently), drain the job graph, collect cell records."""
        self.enqueue(plan)
        if plan.cells:
            self.context.drain()
        records = [self._record(cell) for cell in plan.cells]
        return RunResults(plan=plan, context=self.context, records=records)

    def _record(self, cell: PlanCell) -> dict:
        """The standardized per-cell record (axes fields + strategy metrics)."""
        context = self.context
        core_kind = CoreKind(cell.core_kind)
        record: Dict[str, Any] = {
            "strategy": cell.strategy,
            "application": cell.application,
            "associativity": cell.associativity,
            "core": cell.core_kind,
        }
        if cell.target is not None:
            record["cache"] = cell.target
        if cell.organization is not None:
            record["organization"] = cell.organization

        if cell.strategy == STRATEGY_BASELINE:
            baseline = context.baseline(cell.application, cell.associativity, core_kind)
            record["cycles"] = baseline.cycles
            record["energy_total"] = baseline.energy.total
            for structure in ENERGY_STRUCTURES:
                record[f"{structure}_energy_fraction"] = baseline.energy.fraction(structure)
        elif cell.strategy == STRATEGY_STATIC:
            profile = context.static_profile(
                cell.application, cell.organization, target=cell.target,
                associativity=cell.associativity, core_kind=core_kind,
            )
            record["size_reduction_percent"] = profile.size_reduction()
            record["energy_delay_reduction_percent"] = profile.energy_delay_reduction()
            record["best_config"] = profile.best_config.label
        elif cell.strategy == STRATEGY_DYNAMIC:
            dynamic = context.dynamic_run(
                cell.application, cell.organization, target=cell.target,
                associativity=cell.associativity, core_kind=core_kind,
            )
            baseline = context.baseline(cell.application, cell.associativity, core_kind)
            if cell.target == D_CACHE:
                record["size_reduction_percent"] = dynamic.l1d_size_reduction()
                record["resizes"] = dynamic.l1d_resizes
            else:
                record["size_reduction_percent"] = dynamic.l1i_size_reduction()
                record["resizes"] = dynamic.l1i_resizes
            record["energy_delay_reduction_percent"] = (
                dynamic.energy_delay_reduction(baseline)
            )
        else:  # joint-static
            joint = context.joint_static_run(
                cell.application, cell.organization, cell.associativity
            )
            baseline = context.baseline(cell.application, cell.associativity)
            record["size_reduction_percent"] = joint.combined_size_reduction()
            record["energy_delay_reduction_percent"] = (
                joint.energy_delay_reduction(baseline)
            )
            record["slowdown"] = joint.slowdown_vs(baseline)
        return record

    # --------------------------------------------------------------- analyze
    def analyze(self, results: RunResults) -> ResultStore:
        """Build the spec's report from a drained run."""
        info = analyzer_info(results.spec.analysis.kind)
        report = info.build(results)
        return ResultStore(spec=results.spec, records=results.records, result=report)

    def execute(self, spec: ExperimentSpec) -> ResultStore:
        """plan → run → analyze in one call."""
        return self.analyze(self.run(self.plan(spec)))


# ---------------------------------------------------------------------------
# The generic ``grid`` analyzer: per-cell rows plus mean-over-application
# reductions, for user-defined sweeps no committed figure covers.
# ---------------------------------------------------------------------------

#: Record fields that identify a cell (everything else is a metric).
AXIS_FIELDS: Tuple[str, ...] = (
    "strategy", "cache", "organization", "associativity", "core", "application",
)


@dataclass
class GridResult:
    """Report of a generic design-space sweep."""

    title: str
    records: List[dict] = field(default_factory=list)
    mean_over_applications: bool = True

    def rows(self) -> List[dict]:
        """One row per cell, plus an AVG. row per application group."""
        rows = [dict(record) for record in self.records]
        if self.mean_over_applications:
            groups: Dict[tuple, List[dict]] = {}
            for record in self.records:
                key = tuple(
                    (axis, record[axis])
                    for axis in AXIS_FIELDS
                    if axis != "application" and axis in record
                )
                groups.setdefault(key, []).append(record)
            for key, members in groups.items():
                if len(members) < 2:
                    continue
                mean_row: Dict[str, Any] = dict(key)
                mean_row["application"] = "AVG."
                for name in members[0]:
                    value = members[0][name]
                    if name in AXIS_FIELDS or isinstance(value, (str, bool)):
                        continue
                    if all(name in member for member in members):
                        mean_row[name] = sum(m[name] for m in members) / len(members)
                rows.append(mean_row)
        return rows

    def format_table(self) -> str:
        """Generic text rendering: axis columns first, metrics after."""
        rows = self.rows()
        if not rows:
            return f"{self.title}\n(no cells)"
        columns: List[str] = [axis for axis in AXIS_FIELDS if any(axis in r for r in rows)]
        metrics = sorted({name for row in rows for name in row} - set(columns))
        columns += metrics
        rendered: List[List[str]] = [columns]
        for row in rows:
            rendered.append([
                f"{row[name]:.3f}" if isinstance(row.get(name), float)
                else str(row.get(name, "-"))
                for name in columns
            ])
        widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
        lines = [self.title, ""]
        for line in rendered:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        return "\n".join(lines)


@register_analyzer("grid")
def _build_grid(results: RunResults) -> GridResult:
    """The generic analyzer: standardized records shaped as a flat grid."""
    parameters = results.spec.analysis.parameters
    title = results.spec.title or results.spec.name
    return GridResult(
        title=title,
        records=results.records,
        mean_over_applications=bool(parameters.get("mean_over_applications", True)),
    )
