"""Table 2 — the base system configuration, plus the energy-breakdown check.

Table 2 of the paper lists the simulated base system; Section 4 additionally
reports that with that configuration the d-cache accounts for about 18.5 %
and the i-cache for about 17.5 % of total processor energy averaged over the
applications.  This module prints the configuration and measures the
breakdown on the synthetic workloads so the calibration can be checked in
one place.

The design space (baseline runs of every application at the base 2-way
associativity) lives in ``specs/table2.yaml``; this module registers the
``energy-breakdown`` analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.orchestrator import DoEOrchestrator, RunResults, register_analyzer
from repro.experiments.spec import ExperimentSpec, load_builtin_spec


def spec() -> ExperimentSpec:
    """The committed declarative spec this module executes."""
    return load_builtin_spec("table2")


@dataclass
class Table2Result:
    """Base configuration description and measured energy fractions."""

    configuration: str
    per_application_fractions: Dict[str, Dict[str, float]]

    def rows(self) -> List[dict]:
        """One row per application with its energy fractions."""
        return [
            {"application": name, **fractions}
            for name, fractions in self.per_application_fractions.items()
        ]

    @property
    def mean_fractions(self) -> Dict[str, float]:
        """Energy fraction of each structure averaged over applications."""
        if not self.per_application_fractions:
            return {}
        keys = next(iter(self.per_application_fractions.values())).keys()
        count = len(self.per_application_fractions)
        return {
            key: sum(
                fractions[key] for fractions in self.per_application_fractions.values()
            ) / count
            for key in keys
        }

    def format_table(self) -> str:
        """Text rendering: the configuration block plus the breakdown table."""
        lines = ["Table 2 — base system configuration", "", self.configuration, ""]
        lines.append("Measured processor energy breakdown (fraction of total):")
        header = f"{'application':<12}" + "".join(
            f"{name:>9}" for name in ("l1d", "l1i", "l2", "memory", "core")
        )
        lines.append(header)
        for name, fractions in self.per_application_fractions.items():
            lines.append(
                f"{name:<12}"
                + "".join(
                    f"{fractions[key]:>9.3f}" for key in ("l1d", "l1i", "l2", "memory", "core")
                )
            )
        mean = self.mean_fractions
        lines.append(
            f"{'AVG.':<12}"
            + "".join(f"{mean[key]:>9.3f}" for key in ("l1d", "l1i", "l2", "memory", "core"))
        )
        return "\n".join(lines)


@register_analyzer("energy-breakdown")
def build_result(results: RunResults) -> Table2Result:
    """Shape drained baseline cells into the per-application breakdown."""
    context = results.context
    associativity = results.spec.axes.associativities[0]
    system = context.system(associativity=associativity)
    fractions: Dict[str, Dict[str, float]] = {}
    for application in results.applications:
        baseline = context.baseline(application, associativity=associativity)
        fractions[application] = {
            structure: baseline.energy.fraction(structure)
            for structure in ("l1d", "l1i", "l2", "memory", "core")
        }
    return Table2Result(configuration=system.describe(), per_application_fractions=fractions)


def prepare(context: ExperimentContext) -> None:
    """Enqueue the baseline run of every application (phase 1, no execution)."""
    orchestrator = DoEOrchestrator(context)
    orchestrator.enqueue(orchestrator.plan(spec()))


def run(context: ExperimentContext | None = None) -> Table2Result:
    """Describe the base configuration and measure its energy breakdown."""
    return DoEOrchestrator(context).execute(spec()).result
