"""Shared experiment context.

The context owns the experiment-wide parameters (trace length, warmup,
interval sizes, the slowdown bound) and memoises everything expensive —
generated traces, baseline runs, static profiling sweeps and dynamic runs —
keyed by the parameters that actually influence them.  Figures 4, 5 and 6
share profiling sweeps, and Figure 9 reuses Figure 7/8's static choices, so
running the whole evaluation in one process costs far less than the sum of
its parts.

The memoised units are *futures*, not results: ``baseline_future`` /
``profile_future`` / ``dynamic_future`` / ``joint_static_future`` enqueue
jobs on the context's :class:`repro.sim.runner.SweepRunner` without
executing anything, so an experiment module can lay out its whole figure —
and ``run-all`` the whole evaluation — before the first simulation starts.
The eager accessors (``baseline``, ``static_profile``, ``dynamic_run``,
``joint_static_run``) resolve the same futures, draining the runner on
first use, so call sites keep their historical shape and both paths
produce byte-identical numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.common.config import CacheGeometry, CoreConfig, CoreKind, SystemConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import KIB
from repro.cpu.timing import CoreTimingParameters
from repro.energy.technology import TechnologyParameters
from repro.resizing.organization import ResizingOrganization
from repro.sim.future import SimFuture
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    L1SetupSpec,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    organization_class,
    resolve_trace,
)
from repro.sim.simulator import Simulator
from repro.sim.sweep import (
    DCACHE,
    FUSED,
    ICACHE,
    StaticProfile,
    StaticProfileFuture,
    Sweep,
    require_ladder_mode,
    make_job,
)
from repro.workloads.ingest import ExternalTraceSpec
from repro.workloads.profiles import SPEC_APPLICATION_NAMES
from repro.workloads.trace import Trace

#: Organization names accepted by :meth:`ExperimentContext.organization`.
#: Resolution goes through the sweep engine's registry
#: (:func:`repro.sim.runner.register_organization`), so custom organizations
#: registered there are usable in experiments too.
SELECTIVE_WAYS = "selective-ways"
SELECTIVE_SETS = "selective-sets"
HYBRID = "hybrid"


class ExperimentContext:
    """Parameters plus memoisation for the experiment harnesses."""

    def __init__(
        self,
        n_instructions: int = 60_000,
        warmup_fraction: float = 0.10,
        interval_instructions: int = 1500,
        sense_interval_accesses: int = 1024,
        miss_bound_factor: float = 1.5,
        max_slowdown: Optional[float] = None,
        l1_capacity_bytes: int = 32 * KIB,
        applications: Optional[Iterable[str]] = None,
        technology: Optional[TechnologyParameters] = None,
        timing: Optional[CoreTimingParameters] = None,
        runner: Optional[SweepRunner] = None,
        engine: Optional[str] = None,
        ladder_mode: str = FUSED,
        trace_files: Optional[Mapping[str, str]] = None,
        sample_every: int = 1,
        sample_warmup: int = 0,
    ) -> None:
        if n_instructions < 1_000:
            raise ConfigurationError("experiments need at least 1000 instructions")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError("warmup fraction must be in [0, 1)")
        if sample_every < 1:
            raise ConfigurationError("sample-every must be >= 1")
        if sample_warmup < 0:
            raise ConfigurationError("sample-warmup must be >= 0")
        self.n_instructions = n_instructions
        self.warmup_instructions = int(n_instructions * warmup_fraction)
        self.interval_instructions = interval_instructions
        self.sense_interval_accesses = sense_interval_accesses
        self.miss_bound_factor = miss_bound_factor
        self.max_slowdown = max_slowdown
        self.l1_capacity_bytes = l1_capacity_bytes
        #: Interval-sampling schedule applied to every run the context owns
        #: (docs/SAMPLING.md).  ``sample_every`` == 1 replays exhaustively.
        self.sample_every = sample_every
        self.sample_warmup = sample_warmup
        #: Workload name -> trace-file path.  Names registered here resolve
        #: to :class:`~repro.workloads.ingest.ExternalTraceSpec` instead of a
        #: synthetic :class:`TraceSpec`, and join the default application
        #: list when ``applications`` is omitted.
        self.trace_files: Dict[str, str] = dict(trace_files) if trace_files else {}
        for name in self.trace_files:
            if name in SPEC_APPLICATION_NAMES:
                raise ConfigurationError(
                    f"external trace name {name!r} shadows a built-in application"
                )
        self.applications: Tuple[str, ...] = (
            tuple(applications)
            if applications is not None
            else SPEC_APPLICATION_NAMES + tuple(sorted(self.trace_files))
        )
        if not self.applications:
            raise ConfigurationError("experiments need at least one application")
        self.technology = technology if technology is not None else TechnologyParameters()
        self.timing = timing if timing is not None else CoreTimingParameters()
        #: Replay engine every simulation of this context uses (None = the
        #: package default).  Engines are bit-identical, so this only
        #: affects speed; it reaches jobs through the memoised simulators.
        self.engine = engine
        #: How profiling ladders execute: ``"fused"`` (default — one trace
        #: pass feeds every rung, see :mod:`repro.sim.ladder`) or
        #: ``"per-config"`` (one job per rung).  Bit-identical either way.
        try:
            self.ladder_mode = require_ladder_mode(ladder_mode)
        except SimulationError as exc:
            raise ConfigurationError(str(exc)) from exc
        #: Every simulation the context performs goes through this runner, so
        #: handing in a parallel and/or cache-backed SweepRunner accelerates
        #: the whole evaluation without touching any experiment module.
        self.runner = runner if runner is not None else SweepRunner()

        self._traces: Dict[str, Trace] = {}
        self._systems: Dict[Tuple[int, CoreKind], SystemConfig] = {}
        self._simulators: Dict[Tuple[int, CoreKind], Simulator] = {}
        self._sweeps: Dict[Tuple[int, CoreKind], Sweep] = {}
        self._organizations: Dict[Tuple[str, int], ResizingOrganization] = {}
        # Memoised *futures*: enqueued once, shared by every figure that
        # names the same (application, organization, target, assoc, core).
        self._baselines: Dict[Tuple[str, int, CoreKind], SimFuture] = {}
        self._profiles: Dict[Tuple[str, str, str, int, CoreKind], StaticProfileFuture] = {}
        self._dynamic_runs: Dict[Tuple[str, str, str, int, CoreKind], SimFuture] = {}
        self._joint_runs: Dict[Tuple[str, str, int], SimFuture] = {}

    # ----------------------------------------------------------------- basics
    def trace(self, application: str) -> Trace:
        """The (memoised) synthetic trace for one application.

        A per-context reference sits in front of the sweep engine's shared
        per-process memo: materialisation is shared with the runner (no
        duplicate copies), while the context keeps its own traces pinned so
        the engine memo's LRU eviction can never force a regeneration (or
        break identity) within one context's lifetime.
        """
        cached = self._traces.get(application)
        if cached is None:
            cached = resolve_trace(self.trace_spec(application))
            self._traces[application] = cached
        return cached

    def trace_spec(self, application: str) -> Union[TraceSpec, ExternalTraceSpec]:
        """Declarative spec for one application's trace.

        Jobs carry this spec instead of the materialised trace, so submitting
        them to worker processes costs a few bytes of pickling; each worker
        regenerates (and memoises) the identical trace from the profile's
        fixed seed — or, for names registered via ``trace_files``, ingests
        the external file once and memoises it by content digest.
        """
        path = self.trace_files.get(application)
        if path is not None:
            return ExternalTraceSpec(path=path, name=application)
        return TraceSpec(application=application, n_instructions=self.n_instructions)

    def system(
        self,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SystemConfig:
        """A Table-2 system with the requested L1 associativity and core."""
        key = (associativity, core_kind)
        cached = self._systems.get(key)
        if cached is None:
            geometry = CacheGeometry(self.l1_capacity_bytes, associativity)
            cached = SystemConfig(core=CoreConfig(kind=core_kind), l1d=geometry, l1i=geometry)
            self._systems[key] = cached
        return cached

    def simulator(
        self,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> Simulator:
        """A (memoised) simulator for the requested system."""
        key = (associativity, core_kind)
        cached = self._simulators.get(key)
        if cached is None:
            cached = Simulator(
                self.system(associativity, core_kind),
                self.technology,
                self.timing,
                engine=self.engine,
            )
            self._simulators[key] = cached
        return cached

    def sweep(
        self,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> Sweep:
        """A (memoised) :class:`~repro.sim.sweep.Sweep` facade for one system.

        All facades share the context's runner, so submissions from every
        system configuration still drain as one job graph.
        """
        key = (associativity, core_kind)
        cached = self._sweeps.get(key)
        if cached is None:
            cached = Sweep(
                self.simulator(associativity, core_kind),
                self.runner,
                interval_instructions=self.interval_instructions,
                warmup_instructions=self.warmup_instructions,
                sample_every=self.sample_every,
                sample_warmup=self.sample_warmup,
                ladder_mode=self.ladder_mode,
                max_slowdown=self.max_slowdown,
            )
            self._sweeps[key] = cached
        return cached

    def organization(self, name: str, associativity: int = 2) -> ResizingOrganization:
        """A (memoised) organization for the 32K L1 of the given associativity."""
        key = (name, associativity)
        cached = self._organizations.get(key)
        if cached is None:
            try:
                factory = organization_class(name)
            except SimulationError as exc:
                raise ConfigurationError(str(exc)) from exc
            cached = factory(CacheGeometry(self.l1_capacity_bytes, associativity))
            self._organizations[key] = cached
        return cached

    # -------------------------------------------------- deferred submissions
    def baseline_future(
        self,
        application: str,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SimFuture:
        """Enqueue (once) the non-resizable baseline run; nothing executes yet."""
        key = (application, associativity, core_kind)
        cached = self._baselines.get(key)
        if cached is None:
            cached = self.sweep(associativity, core_kind).submit_baseline(
                self.trace_spec(application)
            )
            self._baselines[key] = cached
        return cached

    def profile_future(
        self,
        application: str,
        organization_name: str,
        target: str = DCACHE,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> StaticProfileFuture:
        """Enqueue (once) a whole profiling ladder; nothing executes yet."""
        key = (application, organization_name, target, associativity, core_kind)
        cached = self._profiles.get(key)
        if cached is None:
            cached = self.sweep(associativity, core_kind).submit_profile(
                self.trace_spec(application),
                self.organization(organization_name, associativity),
                target=target,
                baseline=self.baseline_future(application, associativity, core_kind),
            )
            self._profiles[key] = cached
        return cached

    def dynamic_future(
        self,
        application: str,
        organization_name: str,
        target: str = DCACHE,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SimFuture:
        """Enqueue (once) the dynamic run derived from the matching profile.

        The job is *deferred*: its miss-bound/size-bound parameters and
        initial configuration come from the profiling ladder's results, so
        the runner builds it only after the profile's wave completes —
        profile and dynamic runs for every application still fit in one
        drain of two pool batches.
        """
        key = (application, organization_name, target, associativity, core_kind)
        cached = self._dynamic_runs.get(key)
        if cached is None:
            cached = self.sweep(associativity, core_kind).submit_dynamic(
                self.trace_spec(application),
                self.organization(organization_name, associativity),
                self.profile_future(
                    application, organization_name, target, associativity, core_kind
                ),
                target=target,
                sense_interval_accesses=self.sense_interval_accesses,
                miss_bound_factor=self.miss_bound_factor,
            )
            self._dynamic_runs[key] = cached
        return cached

    def joint_static_future(
        self,
        application: str,
        organization_name: str,
        associativity: int = 2,
    ) -> SimFuture:
        """Enqueue (once) the Figure-9 joint run: d- and i-cache resized
        together, each statically fixed at its individually profiled best
        size.  Deferred on both profiles, since the best sizes are not known
        until their ladders resolve."""
        key = (application, organization_name, associativity)
        cached = self._joint_runs.get(key)
        if cached is None:
            d_profile = self.profile_future(
                application, organization_name, DCACHE, associativity
            )
            i_profile = self.profile_future(
                application, organization_name, ICACHE, associativity
            )
            organization = self.organization(organization_name, associativity)
            simulator = self.simulator(associativity)
            trace = self.trace_spec(application)

            def builder():
                d_spec = L1SetupSpec(
                    organization=organization.name,
                    geometry=organization.geometry,
                    strategy=StrategySpec.static(d_profile.result().best_config),
                )
                i_spec = L1SetupSpec(
                    organization=organization.name,
                    geometry=organization.geometry,
                    strategy=StrategySpec.static(i_profile.result().best_config),
                )
                return make_job(
                    simulator,
                    trace,
                    d_setup=d_spec,
                    i_setup=i_spec,
                    interval_instructions=self.interval_instructions,
                    warmup_instructions=self.warmup_instructions,
                    sample_every=self.sample_every,
                    sample_warmup=self.sample_warmup,
                )

            cached = self.runner.submit_deferred(
                builder,
                d_profile.dependencies + i_profile.dependencies,
                label=f"joint:{application}",
            )
            self._joint_runs[key] = cached
        return cached

    def drain(self) -> None:
        """Execute every enqueued job now (dependency waves, one pool batch
        each).  Purely an optimisation point — eager accessors drain on
        demand — that lets a harness separate 'lay out the evaluation' from
        'run it'."""
        self.runner.drain()

    # ------------------------------------------------------------------- runs
    def baseline(
        self,
        application: str,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SimulationResult:
        """The non-resizable baseline run for (application, associativity, core)."""
        return self.baseline_future(application, associativity, core_kind).result()

    def static_profile(
        self,
        application: str,
        organization_name: str,
        target: str = DCACHE,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> StaticProfile:
        """Profiling sweep of one organization on one cache of one application."""
        return self.profile_future(
            application, organization_name, target, associativity, core_kind
        ).result()

    def dynamic_run(
        self,
        application: str,
        organization_name: str,
        target: str = DCACHE,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SimulationResult:
        """Miss-ratio-based dynamic resizing run with profiled parameters."""
        return self.dynamic_future(
            application, organization_name, target, associativity, core_kind
        ).result()

    def joint_static_run(
        self,
        application: str,
        organization_name: str,
        associativity: int = 2,
    ) -> SimulationResult:
        """The Figure-9 joint d+i static run (both caches at profiled best)."""
        return self.joint_static_future(
            application, organization_name, associativity
        ).result()

    # ------------------------------------------------------------- convenience
    def mean_over_applications(self, values: List[float]) -> float:
        """Arithmetic mean used for every 'AVG.' column in the figures."""
        if not values:
            return 0.0
        return sum(values) / len(values)


#: Targets re-exported so experiment modules do not need to import sweep.
D_CACHE = DCACHE
I_CACHE = ICACHE
