"""Shared experiment context.

The context owns the experiment-wide parameters (trace length, warmup,
interval sizes, the slowdown bound) and memoises everything expensive —
generated traces, baseline runs, static profiling sweeps and dynamic runs —
keyed by the parameters that actually influence them.  Figures 4, 5 and 6
share profiling sweeps, and Figure 9 reuses Figure 7/8's static choices, so
running the whole evaluation in one process costs far less than the sum of
its parts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import CacheGeometry, CoreConfig, CoreKind, SystemConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import KIB
from repro.cpu.timing import CoreTimingParameters
from repro.energy.technology import TechnologyParameters
from repro.resizing.organization import ResizingOrganization
from repro.sim.results import SimulationResult
from repro.sim.runner import SweepRunner, TraceSpec, organization_class, resolve_trace
from repro.sim.simulator import Simulator
from repro.sim.sweep import (
    DCACHE,
    ICACHE,
    StaticProfile,
    profile_static,
    run_baseline,
    run_dynamic,
)
from repro.workloads.profiles import SPEC_APPLICATION_NAMES
from repro.workloads.trace import Trace

#: Organization names accepted by :meth:`ExperimentContext.organization`.
#: Resolution goes through the sweep engine's registry
#: (:func:`repro.sim.runner.register_organization`), so custom organizations
#: registered there are usable in experiments too.
SELECTIVE_WAYS = "selective-ways"
SELECTIVE_SETS = "selective-sets"
HYBRID = "hybrid"


class ExperimentContext:
    """Parameters plus memoisation for the experiment harnesses."""

    def __init__(
        self,
        n_instructions: int = 60_000,
        warmup_fraction: float = 0.10,
        interval_instructions: int = 1500,
        sense_interval_accesses: int = 1024,
        miss_bound_factor: float = 1.5,
        max_slowdown: Optional[float] = None,
        l1_capacity_bytes: int = 32 * KIB,
        applications: Optional[Iterable[str]] = None,
        technology: Optional[TechnologyParameters] = None,
        timing: Optional[CoreTimingParameters] = None,
        runner: Optional[SweepRunner] = None,
    ) -> None:
        if n_instructions < 1_000:
            raise ConfigurationError("experiments need at least 1000 instructions")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError("warmup fraction must be in [0, 1)")
        self.n_instructions = n_instructions
        self.warmup_instructions = int(n_instructions * warmup_fraction)
        self.interval_instructions = interval_instructions
        self.sense_interval_accesses = sense_interval_accesses
        self.miss_bound_factor = miss_bound_factor
        self.max_slowdown = max_slowdown
        self.l1_capacity_bytes = l1_capacity_bytes
        self.applications: Tuple[str, ...] = (
            tuple(applications) if applications is not None else SPEC_APPLICATION_NAMES
        )
        if not self.applications:
            raise ConfigurationError("experiments need at least one application")
        self.technology = technology if technology is not None else TechnologyParameters()
        self.timing = timing if timing is not None else CoreTimingParameters()
        #: Every simulation the context performs goes through this runner, so
        #: handing in a parallel and/or cache-backed SweepRunner accelerates
        #: the whole evaluation without touching any experiment module.
        self.runner = runner if runner is not None else SweepRunner()

        self._traces: Dict[str, Trace] = {}
        self._systems: Dict[Tuple[int, CoreKind], SystemConfig] = {}
        self._simulators: Dict[Tuple[int, CoreKind], Simulator] = {}
        self._organizations: Dict[Tuple[str, int], ResizingOrganization] = {}
        self._baselines: Dict[Tuple[str, int, CoreKind], SimulationResult] = {}
        self._profiles: Dict[Tuple[str, str, str, int, CoreKind], StaticProfile] = {}
        self._dynamic_runs: Dict[Tuple[str, str, str, int, CoreKind], SimulationResult] = {}

    # ----------------------------------------------------------------- basics
    def trace(self, application: str) -> Trace:
        """The (memoised) synthetic trace for one application.

        A per-context reference sits in front of the sweep engine's shared
        per-process memo: materialisation is shared with the runner (no
        duplicate copies), while the context keeps its own traces pinned so
        the engine memo's LRU eviction can never force a regeneration (or
        break identity) within one context's lifetime.
        """
        cached = self._traces.get(application)
        if cached is None:
            cached = resolve_trace(self.trace_spec(application))
            self._traces[application] = cached
        return cached

    def trace_spec(self, application: str) -> TraceSpec:
        """Declarative spec for one application's trace.

        Jobs carry this spec instead of the materialised trace, so submitting
        them to worker processes costs a few bytes of pickling; each worker
        regenerates (and memoises) the identical trace from the profile's
        fixed seed.
        """
        return TraceSpec(application=application, n_instructions=self.n_instructions)

    def system(
        self,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SystemConfig:
        """A Table-2 system with the requested L1 associativity and core."""
        key = (associativity, core_kind)
        cached = self._systems.get(key)
        if cached is None:
            geometry = CacheGeometry(self.l1_capacity_bytes, associativity)
            cached = SystemConfig(core=CoreConfig(kind=core_kind), l1d=geometry, l1i=geometry)
            self._systems[key] = cached
        return cached

    def simulator(
        self,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> Simulator:
        """A (memoised) simulator for the requested system."""
        key = (associativity, core_kind)
        cached = self._simulators.get(key)
        if cached is None:
            cached = Simulator(self.system(associativity, core_kind), self.technology, self.timing)
            self._simulators[key] = cached
        return cached

    def organization(self, name: str, associativity: int = 2) -> ResizingOrganization:
        """A (memoised) organization for the 32K L1 of the given associativity."""
        key = (name, associativity)
        cached = self._organizations.get(key)
        if cached is None:
            try:
                factory = organization_class(name)
            except SimulationError as exc:
                raise ConfigurationError(str(exc)) from exc
            cached = factory(CacheGeometry(self.l1_capacity_bytes, associativity))
            self._organizations[key] = cached
        return cached

    # ------------------------------------------------------------------- runs
    def baseline(
        self,
        application: str,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SimulationResult:
        """The non-resizable baseline run for (application, associativity, core)."""
        key = (application, associativity, core_kind)
        cached = self._baselines.get(key)
        if cached is None:
            cached = run_baseline(
                self.simulator(associativity, core_kind),
                self.trace_spec(application),
                interval_instructions=self.interval_instructions,
                warmup_instructions=self.warmup_instructions,
                runner=self.runner,
            )
            self._baselines[key] = cached
        return cached

    def static_profile(
        self,
        application: str,
        organization_name: str,
        target: str = DCACHE,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> StaticProfile:
        """Profiling sweep of one organization on one cache of one application."""
        key = (application, organization_name, target, associativity, core_kind)
        cached = self._profiles.get(key)
        if cached is None:
            cached = profile_static(
                self.simulator(associativity, core_kind),
                self.trace_spec(application),
                self.organization(organization_name, associativity),
                target=target,
                baseline=self.baseline(application, associativity, core_kind),
                interval_instructions=self.interval_instructions,
                warmup_instructions=self.warmup_instructions,
                max_slowdown=self.max_slowdown,
                runner=self.runner,
            )
            self._profiles[key] = cached
        return cached

    def dynamic_run(
        self,
        application: str,
        organization_name: str,
        target: str = DCACHE,
        associativity: int = 2,
        core_kind: CoreKind = CoreKind.OUT_OF_ORDER_NONBLOCKING,
    ) -> SimulationResult:
        """Miss-ratio-based dynamic resizing run with profiled parameters."""
        key = (application, organization_name, target, associativity, core_kind)
        cached = self._dynamic_runs.get(key)
        if cached is None:
            profile = self.static_profile(
                application, organization_name, target, associativity, core_kind
            )
            parameters = profile.dynamic_parameters(
                sense_interval_accesses=self.sense_interval_accesses,
                miss_bound_factor=self.miss_bound_factor,
            )
            cached = run_dynamic(
                self.simulator(associativity, core_kind),
                self.trace_spec(application),
                self.organization(organization_name, associativity),
                parameters,
                target=target,
                interval_instructions=self.interval_instructions,
                warmup_instructions=self.warmup_instructions,
                initial_config=profile.best_config,
                runner=self.runner,
            )
            self._dynamic_runs[key] = cached
        return cached

    # ------------------------------------------------------------- convenience
    def mean_over_applications(self, values: List[float]) -> float:
        """Arithmetic mean used for every 'AVG.' column in the figures."""
        if not values:
            return 0.0
        return sum(values) / len(values)


#: Targets re-exported so experiment modules do not need to import sweep.
D_CACHE = DCACHE
I_CACHE = ICACHE
