"""Figure 7 — d-cache static vs dynamic resizing on two processor types.

Figure 7 compares the static and the miss-ratio based dynamic resizing
strategies for a 2-way selective-sets d-cache on (a) an in-order issue
engine with a blocking d-cache — where every data-miss sits on the critical
path — and (b) the base out-of-order engine with a non-blocking d-cache.
Panel rows report, per application, the reduction in average d-cache size
and in processor energy-delay.  The paper's findings: dynamic resizing wins
clearly when miss latency is exposed (in-order/blocking) and the working set
varies; with the out-of-order engine static resizing is nearly as good
because misses are cheap enough that it can downsize aggressively.

The design space lives in ``specs/figure7.yaml`` (the ``core_kinds`` order
is the panel order); this module registers the ``strategy-comparison``
analyzer shared with Figure 8, which runs the same spec against the i-cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.config import CoreKind
from repro.experiments.context import D_CACHE, SELECTIVE_SETS, ExperimentContext
from repro.experiments.orchestrator import DoEOrchestrator, RunResults, register_analyzer
from repro.experiments.spec import ExperimentSpec, load_builtin_spec

CORE_KINDS = (CoreKind.IN_ORDER_BLOCKING, CoreKind.OUT_OF_ORDER_NONBLOCKING)


def spec(associativity: int = 2, organization: str = SELECTIVE_SETS) -> ExperimentSpec:
    """The committed spec, optionally re-pointed at other axes."""
    return _variant(load_builtin_spec("figure7"), associativity, organization)


def _variant(
    loaded: ExperimentSpec, associativity: int, organization: str
) -> ExperimentSpec:
    """Apply the historical ``run()`` keyword overrides to a committed spec."""
    if (
        associativity == loaded.axes.associativities[0]
        and organization == loaded.axes.organizations[0]
    ):
        return loaded
    return loaded.with_axes(
        associativities=[associativity], organizations=[organization]
    )


@dataclass
class StrategyComparison:
    """Static vs dynamic numbers for one application on one core type."""

    application: str
    static_size_reduction: float
    static_energy_delay_reduction: float
    dynamic_size_reduction: float
    dynamic_energy_delay_reduction: float
    static_config: str = ""
    dynamic_resizes: int = 0

    @property
    def dynamic_size_gap(self) -> float:
        """Extra average-size reduction dynamic resizing achieves (percentage points)."""
        return self.dynamic_size_reduction - self.static_size_reduction

    @property
    def dynamic_energy_delay_gap(self) -> float:
        """Extra energy-delay reduction dynamic resizing achieves (percentage points)."""
        return self.dynamic_energy_delay_reduction - self.static_energy_delay_reduction


@dataclass
class StrategyFigureResult:
    """Shared result structure for Figures 7 (d-cache) and 8 (i-cache)."""

    target: str
    organization: str
    panels: Dict[CoreKind, List[StrategyComparison]] = field(default_factory=dict)

    def panel(self, core_kind: CoreKind) -> List[StrategyComparison]:
        """Per-application rows for one processor configuration."""
        return self.panels[core_kind]

    def average(self, core_kind: CoreKind) -> StrategyComparison:
        """The AVG. entry of one panel."""
        rows = self.panels[core_kind]
        count = max(1, len(rows))
        return StrategyComparison(
            application="AVG.",
            static_size_reduction=sum(r.static_size_reduction for r in rows) / count,
            static_energy_delay_reduction=(
                sum(r.static_energy_delay_reduction for r in rows) / count
            ),
            dynamic_size_reduction=sum(r.dynamic_size_reduction for r in rows) / count,
            dynamic_energy_delay_reduction=sum(r.dynamic_energy_delay_reduction for r in rows)
            / count,
        )

    def rows(self) -> List[dict]:
        """Flat rows for both panels (AVG. included)."""
        flat = []
        for core_kind, rows in self.panels.items():
            for row in rows + [self.average(core_kind)]:
                flat.append(
                    {
                        "core": core_kind.value,
                        "application": row.application,
                        "static_size_reduction": row.static_size_reduction,
                        "static_ed_reduction": row.static_energy_delay_reduction,
                        "dynamic_size_reduction": row.dynamic_size_reduction,
                        "dynamic_ed_reduction": row.dynamic_energy_delay_reduction,
                    }
                )
        return flat

    def format_table(self) -> str:
        """Text rendering mirroring the figure's two panels."""
        cache_name = "D-cache" if self.target == D_CACHE else "I-cache"
        lines = [f"{cache_name} static vs dynamic resizing ({self.organization}, 2-way)"]
        titles = {
            CoreKind.IN_ORDER_BLOCKING: "(a) In-order issue engine with blocking d-cache",
            CoreKind.OUT_OF_ORDER_NONBLOCKING:
                "(b) Out-of-order issue engine with nonblocking d-cache",
        }
        for core_kind in self.panels:
            lines.append("")
            lines.append(titles[core_kind])
            lines.append(
                f"{'application':<12}{'stat size%':>12}{'stat E·D%':>12}"
                f"{'dyn size%':>12}{'dyn E·D%':>12}"
            )
            for row in self.panels[core_kind] + [self.average(core_kind)]:
                lines.append(
                    f"{row.application:<12}{row.static_size_reduction:>12.1f}"
                    f"{row.static_energy_delay_reduction:>12.1f}"
                    f"{row.dynamic_size_reduction:>12.1f}"
                    f"{row.dynamic_energy_delay_reduction:>12.1f}"
                )
        return "\n".join(lines)


@register_analyzer("strategy-comparison")
def build_result(results: RunResults) -> StrategyFigureResult:
    """Shape drained static+dynamic cells into per-core strategy panels.

    Panel order follows the spec's ``core_kinds`` axis order (the committed
    specs list the in-order panel first, matching the paper's layout).
    """
    axes = results.spec.axes
    context = results.context
    target = axes.targets[0]
    organization = axes.organizations[0]
    associativity = axes.associativities[0]
    result = StrategyFigureResult(target=target, organization=organization)
    for core_value in axes.core_kinds:
        core_kind = CoreKind(core_value)
        rows: List[StrategyComparison] = []
        for application in results.applications:
            profile = context.static_profile(
                application, organization, target=target,
                associativity=associativity, core_kind=core_kind,
            )
            dynamic = context.dynamic_run(
                application, organization, target=target,
                associativity=associativity, core_kind=core_kind,
            )
            baseline = context.baseline(application, associativity, core_kind)
            if target == D_CACHE:
                dynamic_size_reduction = dynamic.l1d_size_reduction()
            else:
                dynamic_size_reduction = dynamic.l1i_size_reduction()
            rows.append(
                StrategyComparison(
                    application=application,
                    static_size_reduction=profile.size_reduction(),
                    static_energy_delay_reduction=profile.energy_delay_reduction(),
                    dynamic_size_reduction=dynamic_size_reduction,
                    dynamic_energy_delay_reduction=dynamic.energy_delay_reduction(baseline),
                    static_config=profile.best_config.label,
                    dynamic_resizes=(
                        dynamic.l1d_resizes if target == D_CACHE else dynamic.l1i_resizes
                    ),
                )
            )
        result.panels[core_kind] = rows
    return result


def prepare(
    context: ExperimentContext,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> None:
    """Enqueue every simulation Figure 7 needs without executing any."""
    orchestrator = DoEOrchestrator(context)
    orchestrator.enqueue(orchestrator.plan(spec(associativity, organization)))


def run(
    context: ExperimentContext | None = None,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> StrategyFigureResult:
    """Regenerate Figure 7 (d-cache, 2-way selective-sets by default)."""
    return DoEOrchestrator(context).execute(spec(associativity, organization)).result
