"""Figure 8 — i-cache static vs dynamic resizing on two processor types.

Same experiment as Figure 7 but resizing the 2-way selective-sets
instruction cache.  The exposure argument flips: i-cache misses are *more*
critical on the out-of-order engine (the back end is rarely the bottleneck
there), so dynamic resizing's advantage shows up on the out-of-order
configuration, while on the in-order engine static resizing is already
aggressive and nearly matches it.

The design space lives in ``specs/figure8.yaml``; the panels are shaped by
Figure 7's shared ``strategy-comparison`` analyzer.
"""

from __future__ import annotations

from repro.experiments.context import SELECTIVE_SETS, ExperimentContext
from repro.experiments.figure7 import (
    StrategyComparison,
    StrategyFigureResult,
    _variant,
)
from repro.experiments.orchestrator import DoEOrchestrator
from repro.experiments.spec import ExperimentSpec, load_builtin_spec

__all__ = ["StrategyComparison", "StrategyFigureResult", "spec", "prepare", "run"]


def spec(associativity: int = 2, organization: str = SELECTIVE_SETS) -> ExperimentSpec:
    """The committed spec, optionally re-pointed at other axes."""
    return _variant(load_builtin_spec("figure8"), associativity, organization)


def prepare(
    context: ExperimentContext,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> None:
    """Enqueue every simulation Figure 8 needs without executing any."""
    orchestrator = DoEOrchestrator(context)
    orchestrator.enqueue(orchestrator.plan(spec(associativity, organization)))


def run(
    context: ExperimentContext | None = None,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> StrategyFigureResult:
    """Regenerate Figure 8 (i-cache, 2-way selective-sets by default)."""
    return DoEOrchestrator(context).execute(spec(associativity, organization)).result
