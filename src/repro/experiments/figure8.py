"""Figure 8 — i-cache static vs dynamic resizing on two processor types.

Same experiment as Figure 7 but resizing the 2-way selective-sets
instruction cache.  The exposure argument flips: i-cache misses are *more*
critical on the out-of-order engine (the back end is rarely the bottleneck
there), so dynamic resizing's advantage shows up on the out-of-order
configuration, while on the in-order engine static resizing is already
aggressive and nearly matches it.
"""

from __future__ import annotations

from repro.experiments.context import I_CACHE, SELECTIVE_SETS, ExperimentContext
from repro.experiments.figure7 import (
    StrategyComparison,
    StrategyFigureResult,
    _compare_strategies,
    _prepare_strategies,
)

__all__ = ["StrategyComparison", "StrategyFigureResult", "prepare", "run"]


def prepare(
    context: ExperimentContext,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> None:
    """Enqueue every simulation Figure 8 needs without executing any."""
    _prepare_strategies(context, I_CACHE, associativity, organization)


def run(
    context: ExperimentContext | None = None,
    associativity: int = 2,
    organization: str = SELECTIVE_SETS,
) -> StrategyFigureResult:
    """Regenerate Figure 8 (i-cache, 2-way selective-sets by default)."""
    context = context if context is not None else ExperimentContext()
    return _compare_strategies(context, I_CACHE, associativity, organization)
