"""Figure 5 — per-application comparison of selective-ways and selective-sets.

The paper's Figure 5 drills into 32K 4-way L1 caches (a reasonable
granularity point for both organizations) and shows, per application, the
reduction in average cache size and the reduction in processor energy-delay
for static selective-ways and selective-sets resizing — d-caches in panel
(a), i-caches in panel (b), with the average appended.

The design space lives in ``specs/figure5.yaml``; this module keeps the
result classes and the historical entry points and registers the
``organization-comparison`` analyzer (its ``parameters`` name which
organization fills the ways/sets columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.config import CoreKind
from repro.experiments.context import (
    D_CACHE,
    I_CACHE,
    SELECTIVE_SETS,
    SELECTIVE_WAYS,
    ExperimentContext,
)
from repro.experiments.orchestrator import DoEOrchestrator, RunResults, register_analyzer
from repro.experiments.spec import ExperimentSpec, load_builtin_spec


def spec(associativity: int = 4) -> ExperimentSpec:
    """The committed spec, optionally re-pointed at another associativity."""
    loaded = load_builtin_spec("figure5")
    if associativity == loaded.axes.associativities[0]:
        return loaded
    return loaded.with_axes(associativities=[associativity])


@dataclass
class ApplicationComparison:
    """Figure 5 numbers for one application and one cache."""

    application: str
    ways_size_reduction: float
    ways_energy_delay_reduction: float
    sets_size_reduction: float
    sets_energy_delay_reduction: float
    ways_config: str = ""
    sets_config: str = ""

    @property
    def sets_wins(self) -> bool:
        """True when selective-sets achieves the better energy-delay reduction."""
        return self.sets_energy_delay_reduction >= self.ways_energy_delay_reduction


@dataclass
class Figure5Result:
    """Per-application detail for the 4-way comparison."""

    associativity: int
    dcache: List[ApplicationComparison] = field(default_factory=list)
    icache: List[ApplicationComparison] = field(default_factory=list)

    def panel(self, target: str) -> List[ApplicationComparison]:
        """The list of per-application rows for one panel."""
        return self.dcache if target == D_CACHE else self.icache

    def average(self, target: str) -> ApplicationComparison:
        """The figure's AVG. entry for one panel."""
        rows = self.panel(target)
        count = max(1, len(rows))
        return ApplicationComparison(
            application="AVG.",
            ways_size_reduction=sum(r.ways_size_reduction for r in rows) / count,
            ways_energy_delay_reduction=sum(r.ways_energy_delay_reduction for r in rows) / count,
            sets_size_reduction=sum(r.sets_size_reduction for r in rows) / count,
            sets_energy_delay_reduction=sum(r.sets_energy_delay_reduction for r in rows) / count,
        )

    def sets_win_count(self, target: str) -> int:
        """How many applications prefer selective-sets in the given panel."""
        return sum(1 for row in self.panel(target) if row.sets_wins)

    def rows(self) -> List[dict]:
        """Flat rows for both panels (the AVG. rows included)."""
        flat = []
        for target in (D_CACHE, I_CACHE):
            for row in self.panel(target) + [self.average(target)]:
                flat.append(
                    {
                        "cache": target,
                        "application": row.application,
                        "ways_size_reduction": row.ways_size_reduction,
                        "ways_ed_reduction": row.ways_energy_delay_reduction,
                        "sets_size_reduction": row.sets_size_reduction,
                        "sets_ed_reduction": row.sets_energy_delay_reduction,
                    }
                )
        return flat

    def format_table(self) -> str:
        """Text rendering mirroring the figure's two panels."""
        lines = [
            f"Figure 5 — selective-ways vs selective-sets for {self.associativity}-way caches",
        ]
        for target, title in ((D_CACHE, "(a) D-Cache"), (I_CACHE, "(b) I-Cache")):
            lines.append("")
            lines.append(title)
            lines.append(
                f"{'application':<12}{'ways size%':>12}{'ways E·D%':>12}"
                f"{'sets size%':>12}{'sets E·D%':>12}"
            )
            for row in self.panel(target) + [self.average(target)]:
                lines.append(
                    f"{row.application:<12}{row.ways_size_reduction:>12.1f}"
                    f"{row.ways_energy_delay_reduction:>12.1f}"
                    f"{row.sets_size_reduction:>12.1f}"
                    f"{row.sets_energy_delay_reduction:>12.1f}"
                )
        return "\n".join(lines)


@register_analyzer("organization-comparison")
def build_result(results: RunResults) -> Figure5Result:
    """Shape drained profiles into per-application ways/sets columns."""
    experiment = results.spec
    parameters = experiment.analysis.parameters
    ways_name = parameters.get("ways_organization", SELECTIVE_WAYS)
    sets_name = parameters.get("sets_organization", SELECTIVE_SETS)
    associativity = experiment.axes.associativities[0]
    core_kind = CoreKind(experiment.axes.core_kinds[0])
    context = results.context
    result = Figure5Result(associativity=associativity)
    for target in experiment.axes.targets:
        panel = result.panel(target)
        for application in results.applications:
            ways_profile = context.static_profile(
                application, ways_name, target=target,
                associativity=associativity, core_kind=core_kind,
            )
            sets_profile = context.static_profile(
                application, sets_name, target=target,
                associativity=associativity, core_kind=core_kind,
            )
            panel.append(
                ApplicationComparison(
                    application=application,
                    ways_size_reduction=ways_profile.size_reduction(),
                    ways_energy_delay_reduction=ways_profile.energy_delay_reduction(),
                    sets_size_reduction=sets_profile.size_reduction(),
                    sets_energy_delay_reduction=sets_profile.energy_delay_reduction(),
                    ways_config=ways_profile.best_config.label,
                    sets_config=sets_profile.best_config.label,
                )
            )
    return result


def prepare(context: ExperimentContext, associativity: int = 4) -> None:
    """Enqueue every profiling ladder Figure 5 needs (phase 1, no execution)."""
    orchestrator = DoEOrchestrator(context)
    orchestrator.enqueue(orchestrator.plan(spec(associativity)))


def run(context: ExperimentContext | None = None, associativity: int = 4) -> Figure5Result:
    """Regenerate Figure 5 (default: the paper's 4-way configuration)."""
    return DoEOrchestrator(context).execute(spec(associativity)).result
