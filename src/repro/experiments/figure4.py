"""Figure 4 — resizable cache organizations and energy-delay reductions.

The paper's Figure 4 plots, for d-caches (a) and i-caches (b), the mean
processor energy-delay reduction achieved by *static* selective-ways and
selective-sets resizing for base caches of 2-, 4-, 8- and 16-way
set-associativity (32K, 1K subarrays, out-of-order core).  The headline
shape: selective-sets wins at associativity <= 4 (peaking at 4-way),
selective-ways wins at 8-way and above because selective-sets runs out of
resizing granularity there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.context import (
    D_CACHE,
    I_CACHE,
    SELECTIVE_SETS,
    SELECTIVE_WAYS,
    ExperimentContext,
)

#: Associativities shown on the figure's x axis.
ASSOCIATIVITIES: Tuple[int, ...] = (2, 4, 8, 16)


@dataclass
class Figure4Result:
    """Mean energy-delay reductions per (cache, organization, associativity)."""

    #: reductions[(target, organization_name, associativity)] -> mean percent.
    reductions: Dict[Tuple[str, str, int], float] = field(default_factory=dict)
    #: per_application[(target, organization_name, associativity)] -> {app: percent}.
    per_application: Dict[Tuple[str, str, int], Dict[str, float]] = field(default_factory=dict)
    associativities: Tuple[int, ...] = ASSOCIATIVITIES

    def mean_reduction(self, target: str, organization: str, associativity: int) -> float:
        """Mean energy-delay reduction (%) for one bar of the figure."""
        return self.reductions[(target, organization, associativity)]

    def rows(self) -> List[dict]:
        """One row per bar of the figure."""
        return [
            {
                "cache": target,
                "organization": organization,
                "associativity": associativity,
                "energy_delay_reduction_percent": value,
            }
            for (target, organization, associativity), value in sorted(self.reductions.items())
        ]

    def crossover_summary(self) -> Dict[str, Dict[int, str]]:
        """Which organization wins at each associativity, per cache."""
        summary: Dict[str, Dict[int, str]] = {}
        for target in (D_CACHE, I_CACHE):
            summary[target] = {}
            for associativity in self.associativities:
                ways = self.reductions[(target, SELECTIVE_WAYS, associativity)]
                sets = self.reductions[(target, SELECTIVE_SETS, associativity)]
                summary[target][associativity] = (
                    SELECTIVE_SETS if sets >= ways else SELECTIVE_WAYS
                )
        return summary

    def format_table(self) -> str:
        """Text rendering mirroring the figure's two panels."""
        lines = ["Figure 4 — organizations and energy-delay reductions (static resizing)"]
        for target, title in ((D_CACHE, "(a) D-Cache"), (I_CACHE, "(b) I-Cache")):
            lines.append("")
            lines.append(title)
            header = f"{'organization':<16}" + "".join(
                f"{assoc:>8}-way" for assoc in self.associativities
            )
            lines.append(header)
            for organization in (SELECTIVE_WAYS, SELECTIVE_SETS):
                cells = "".join(
                    f"{self.reductions[(target, organization, assoc)]:>11.1f}%"
                    for assoc in self.associativities
                )
                lines.append(f"{organization:<16}{cells}")
        return "\n".join(lines)


def prepare(context: ExperimentContext) -> None:
    """Enqueue every simulation Figure 4 needs without executing any.

    Phase 1 of the two-phase pipeline: all profiling ladders (and their
    baselines) for every (associativity, cache, organization, application)
    combination land on the context's runner as pending jobs, so one drain
    executes the whole figure as a single pool batch.
    """
    for associativity in ASSOCIATIVITIES:
        for target in (D_CACHE, I_CACHE):
            for organization in (SELECTIVE_WAYS, SELECTIVE_SETS):
                for application in context.applications:
                    context.profile_future(
                        application, organization, target=target, associativity=associativity
                    )


def run(context: ExperimentContext | None = None) -> Figure4Result:
    """Regenerate Figure 4 (both panels) with the context's parameters."""
    context = context if context is not None else ExperimentContext()
    prepare(context)  # batch everything; the first result() drains the pool
    result = Figure4Result()
    for associativity in ASSOCIATIVITIES:
        for target in (D_CACHE, I_CACHE):
            for organization in (SELECTIVE_WAYS, SELECTIVE_SETS):
                per_app: Dict[str, float] = {}
                for application in context.applications:
                    profile = context.static_profile(
                        application, organization, target=target, associativity=associativity
                    )
                    per_app[application] = profile.energy_delay_reduction()
                key = (target, organization, associativity)
                result.per_application[key] = per_app
                result.reductions[key] = context.mean_over_applications(list(per_app.values()))
    return result
