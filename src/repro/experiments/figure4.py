"""Figure 4 — resizable cache organizations and energy-delay reductions.

The paper's Figure 4 plots, for d-caches (a) and i-caches (b), the mean
processor energy-delay reduction achieved by *static* selective-ways and
selective-sets resizing for base caches of 2-, 4-, 8- and 16-way
set-associativity (32K, 1K subarrays, out-of-order core).  The headline
shape: selective-sets wins at associativity <= 4 (peaking at 4-way),
selective-ways wins at 8-way and above because selective-sets runs out of
resizing granularity there.

The design space lives in the committed spec file
``specs/figure4.yaml``; this module is the result-class shim over the
:class:`~repro.experiments.orchestrator.DoEOrchestrator` — it keeps the
historical ``prepare(context)``/``run(context)`` entry points and registers
the ``organization-grid`` analyzer that shapes the drained cells into
:class:`Figure4Result`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.config import CoreKind
from repro.experiments.context import (
    D_CACHE,
    I_CACHE,
    SELECTIVE_SETS,
    SELECTIVE_WAYS,
    ExperimentContext,
)
from repro.experiments.orchestrator import DoEOrchestrator, RunResults, register_analyzer
from repro.experiments.spec import ExperimentSpec, load_builtin_spec

#: Associativities shown on the figure's x axis.
ASSOCIATIVITIES: Tuple[int, ...] = (2, 4, 8, 16)


def spec() -> ExperimentSpec:
    """The committed declarative spec this module executes."""
    return load_builtin_spec("figure4")


@dataclass
class Figure4Result:
    """Mean energy-delay reductions per (cache, organization, associativity)."""

    #: reductions[(target, organization_name, associativity)] -> mean percent.
    reductions: Dict[Tuple[str, str, int], float] = field(default_factory=dict)
    #: per_application[(target, organization_name, associativity)] -> {app: percent}.
    per_application: Dict[Tuple[str, str, int], Dict[str, float]] = field(default_factory=dict)
    associativities: Tuple[int, ...] = ASSOCIATIVITIES

    def mean_reduction(self, target: str, organization: str, associativity: int) -> float:
        """Mean energy-delay reduction (%) for one bar of the figure."""
        return self.reductions[(target, organization, associativity)]

    def rows(self) -> List[dict]:
        """One row per bar of the figure."""
        return [
            {
                "cache": target,
                "organization": organization,
                "associativity": associativity,
                "energy_delay_reduction_percent": value,
            }
            for (target, organization, associativity), value in sorted(self.reductions.items())
        ]

    def crossover_summary(self) -> Dict[str, Dict[int, str]]:
        """Which organization wins at each associativity, per cache."""
        summary: Dict[str, Dict[int, str]] = {}
        for target in (D_CACHE, I_CACHE):
            summary[target] = {}
            for associativity in self.associativities:
                ways = self.reductions[(target, SELECTIVE_WAYS, associativity)]
                sets = self.reductions[(target, SELECTIVE_SETS, associativity)]
                summary[target][associativity] = (
                    SELECTIVE_SETS if sets >= ways else SELECTIVE_WAYS
                )
        return summary

    def format_table(self) -> str:
        """Text rendering mirroring the figure's two panels."""
        lines = ["Figure 4 — organizations and energy-delay reductions (static resizing)"]
        for target, title in ((D_CACHE, "(a) D-Cache"), (I_CACHE, "(b) I-Cache")):
            lines.append("")
            lines.append(title)
            header = f"{'organization':<16}" + "".join(
                f"{assoc:>8}-way" for assoc in self.associativities
            )
            lines.append(header)
            for organization in (SELECTIVE_WAYS, SELECTIVE_SETS):
                cells = "".join(
                    f"{self.reductions[(target, organization, assoc)]:>11.1f}%"
                    for assoc in self.associativities
                )
                lines.append(f"{organization:<16}{cells}")
        return "\n".join(lines)


@register_analyzer("organization-grid")
def build_result(results: RunResults) -> Figure4Result:
    """Shape drained static-profile cells into the figure's two panels."""
    axes = results.spec.axes
    context = results.context
    core_kind = CoreKind(axes.core_kinds[0])
    result = Figure4Result(associativities=tuple(axes.associativities))
    for associativity in axes.associativities:
        for target in axes.targets:
            for organization in axes.organizations:
                per_app: Dict[str, float] = {}
                for application in results.applications:
                    profile = context.static_profile(
                        application, organization, target=target,
                        associativity=associativity, core_kind=core_kind,
                    )
                    per_app[application] = profile.energy_delay_reduction()
                key = (target, organization, associativity)
                result.per_application[key] = per_app
                result.reductions[key] = context.mean_over_applications(list(per_app.values()))
    return result


def prepare(context: ExperimentContext) -> None:
    """Enqueue every simulation Figure 4 needs without executing any.

    Phase 1 of the two-phase pipeline: the orchestrator enumerates the
    spec's design space and lands every profiling ladder (and its baseline)
    on the context's runner as pending jobs, so one drain executes the
    whole figure as a single pool batch.
    """
    orchestrator = DoEOrchestrator(context)
    orchestrator.enqueue(orchestrator.plan(spec()))


def run(context: ExperimentContext | None = None) -> Figure4Result:
    """Regenerate Figure 4 (both panels) with the context's parameters."""
    return DoEOrchestrator(context).execute(spec()).result
