"""Figure 6 — effectiveness of the hybrid organization.

Figure 6 extends Figure 4 with the paper's proposed hybrid
selective-sets-and-ways organization: for every base set-associativity the
hybrid achieves an energy-delay reduction equal to or better than the best
of selective-ways and selective-sets alone, because its size spectrum is a
superset of both.

The design space lives in ``specs/figure6.yaml`` (Figure 4's grid plus the
hybrid); this module registers the ``hybrid-organization-grid`` analyzer
shaping the drained cells into :class:`Figure6Result`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.config import CoreKind
from repro.experiments.context import (
    D_CACHE,
    HYBRID,
    I_CACHE,
    SELECTIVE_SETS,
    SELECTIVE_WAYS,
    ExperimentContext,
)
from repro.experiments.figure4 import ASSOCIATIVITIES
from repro.experiments.orchestrator import DoEOrchestrator, RunResults, register_analyzer
from repro.experiments.spec import ExperimentSpec, load_builtin_spec

ORGANIZATIONS: Tuple[str, ...] = (HYBRID, SELECTIVE_WAYS, SELECTIVE_SETS)


def spec() -> ExperimentSpec:
    """The committed declarative spec this module executes."""
    return load_builtin_spec("figure6")


@dataclass
class Figure6Result:
    """Mean energy-delay reductions for all three organizations."""

    reductions: Dict[Tuple[str, str, int], float] = field(default_factory=dict)
    per_application: Dict[Tuple[str, str, int], Dict[str, float]] = field(default_factory=dict)
    associativities: Tuple[int, ...] = ASSOCIATIVITIES

    def mean_reduction(self, target: str, organization: str, associativity: int) -> float:
        """Mean energy-delay reduction (%) for one bar of the figure."""
        return self.reductions[(target, organization, associativity)]

    def hybrid_matches_best(self, target: str, associativity: int, tolerance: float = 0.75) -> bool:
        """True when the hybrid is at least as good as both basic organizations.

        ``tolerance`` (percentage points) absorbs simulation noise; the
        paper's claim is "equal or better", and the hybrid's spectrum being a
        superset makes per-application violations impossible up to profiling
        noise.
        """
        hybrid = self.reductions[(target, HYBRID, associativity)]
        ways = self.reductions[(target, SELECTIVE_WAYS, associativity)]
        sets = self.reductions[(target, SELECTIVE_SETS, associativity)]
        return hybrid >= max(ways, sets) - tolerance

    def rows(self) -> List[dict]:
        """One row per bar of the figure."""
        return [
            {
                "cache": target,
                "organization": organization,
                "associativity": associativity,
                "energy_delay_reduction_percent": value,
            }
            for (target, organization, associativity), value in sorted(self.reductions.items())
        ]

    def format_table(self) -> str:
        """Text rendering mirroring the figure's two panels."""
        lines = ["Figure 6 — effectiveness of the hybrid organization (static resizing)"]
        for target, title in ((D_CACHE, "(a) D-Cache"), (I_CACHE, "(b) I-Cache")):
            lines.append("")
            lines.append(title)
            lines.append(
                f"{'organization':<16}"
                + "".join(f"{assoc:>8}-way" for assoc in self.associativities)
            )
            for organization in ORGANIZATIONS:
                cells = "".join(
                    f"{self.reductions[(target, organization, assoc)]:>11.1f}%"
                    for assoc in self.associativities
                )
                lines.append(f"{organization:<16}{cells}")
        return "\n".join(lines)


@register_analyzer("hybrid-organization-grid")
def build_result(results: RunResults) -> Figure6Result:
    """Shape drained static-profile cells into the three-organization grid."""
    axes = results.spec.axes
    context = results.context
    core_kind = CoreKind(axes.core_kinds[0])
    result = Figure6Result(associativities=tuple(axes.associativities))
    for associativity in axes.associativities:
        for target in axes.targets:
            for organization in axes.organizations:
                per_app: Dict[str, float] = {}
                for application in results.applications:
                    profile = context.static_profile(
                        application, organization, target=target,
                        associativity=associativity, core_kind=core_kind,
                    )
                    per_app[application] = profile.energy_delay_reduction()
                key = (target, organization, associativity)
                result.per_application[key] = per_app
                result.reductions[key] = context.mean_over_applications(list(per_app.values()))
    return result


def prepare(context: ExperimentContext) -> None:
    """Enqueue every profiling ladder Figure 6 needs (phase 1, no execution).

    Extends Figure 4's job set with the hybrid organization; the shared
    context memo means overlapping ladders are enqueued exactly once.
    """
    orchestrator = DoEOrchestrator(context)
    orchestrator.enqueue(orchestrator.plan(spec()))


def run(context: ExperimentContext | None = None) -> Figure6Result:
    """Regenerate Figure 6 (both panels) with the context's parameters."""
    return DoEOrchestrator(context).execute(spec()).result
