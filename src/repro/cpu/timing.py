"""Core timing parameters.

The interval timing models need a handful of parameters beyond the
structural core configuration: base CPIs and the miss-latency exposure
factors that distinguish the blocking in-order pipeline from the
non-blocking out-of-order one.  They are collected here with documented
defaults so sensitivity studies can vary them in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class CoreTimingParameters:
    """Tunable constants of the interval timing models.

    Attributes:
        inorder_base_cpi: cycles per instruction of the in-order pipeline in
            the absence of cache misses and mispredictions.
        ooo_base_cpi: same for the out-of-order pipeline (lower, because the
            4-wide OoO engine extracts instruction-level parallelism).
        inorder_dcache_exposure: fraction of data-miss latency exposed on the
            critical path of the in-order, *blocking* d-cache pipeline
            (1.0: every miss stalls the core for its full latency).
        ooo_dcache_exposure: fraction of data-miss latency exposed on the
            out-of-order, *non-blocking* pipeline before memory-level
            parallelism is applied.
        ooo_icache_exposure: fraction of instruction-miss latency exposed on
            the out-of-order pipeline (fetch stalls are hard to hide).
        inorder_icache_exposure: same for the in-order pipeline; slightly
            lower than the d-cache exposure there because fetch runs ahead
            of a frequently-stalled back end.
        writeback_overflow_penalty: cycles lost per write-back-buffer
            overflow.
    """

    inorder_base_cpi: float = 1.0
    ooo_base_cpi: float = 0.55
    inorder_dcache_exposure: float = 1.0
    ooo_dcache_exposure: float = 0.30
    ooo_icache_exposure: float = 0.95
    inorder_icache_exposure: float = 0.70
    writeback_overflow_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.inorder_base_cpi <= 0 or self.ooo_base_cpi <= 0:
            raise ConfigurationError("base CPI values must be positive")
        for name in (
            "inorder_dcache_exposure",
            "ooo_dcache_exposure",
            "ooo_icache_exposure",
            "inorder_icache_exposure",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.writeback_overflow_penalty < 0:
            raise ConfigurationError("writeback overflow penalty must be non-negative")
