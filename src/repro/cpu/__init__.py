"""Processor timing models.

Two core models bracket the miss-latency-exposure regimes Section 4.2 of the
paper contrasts:

* :class:`repro.cpu.inorder.InOrderCore` — in-order issue with a blocking
  data cache: every L1 miss sits on the critical path.
* :class:`repro.cpu.ooo.OutOfOrderCore` — out-of-order issue with a
  non-blocking data cache: data misses are largely hidden behind independent
  work while instruction misses remain exposed.

Both consume :class:`repro.metrics.counts.IntervalCounts` and return cycles,
which keeps them fast enough to evaluate per sense interval and easy to test.
A bimodal branch predictor provides misprediction counts for the front end.
"""

from repro.cpu.branch import BimodalBranchPredictor
from repro.cpu.timing import CoreTimingParameters
from repro.cpu.core_model import CoreModel, make_core_model
from repro.cpu.inorder import InOrderCore
from repro.cpu.ooo import OutOfOrderCore

__all__ = [
    "BimodalBranchPredictor",
    "CoreTimingParameters",
    "CoreModel",
    "make_core_model",
    "InOrderCore",
    "OutOfOrderCore",
]
