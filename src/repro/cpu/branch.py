"""Branch prediction.

The base system uses a combining predictor (Table 2); a bimodal predictor
with a generous table is a close-enough stand-in for the workloads' mostly
regular loop branches, and what actually matters to the resizing study is
only that mispredictions add a realistic, cache-independent number of
cycles to the front end.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two


class BimodalBranchPredictor:
    """A table of 2-bit saturating counters indexed by branch PC."""

    STRONG_NOT_TAKEN = 0
    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2
    STRONG_TAKEN = 3

    def __init__(self, table_entries: int = 4096) -> None:
        if not is_power_of_two(table_entries):
            raise ConfigurationError(f"predictor table must be a power of two, got {table_entries}")
        self.table_entries = table_entries
        self._mask = table_entries - 1
        self._counters = [self.WEAK_TAKEN] * table_entries
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, update the counter, return True on mispredict."""
        index = (pc >> 2) & self._mask
        counter = self._counters[index]
        predicted_taken = counter >= self.WEAK_TAKEN
        mispredicted = predicted_taken != taken

        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1

        if taken:
            if counter < self.STRONG_TAKEN:
                self._counters[index] = counter + 1
        else:
            if counter > self.STRONG_NOT_TAKEN:
                self._counters[index] = counter - 1
        return mispredicted

    @property
    def misprediction_ratio(self) -> float:
        """Fraction of predicted branches that were mispredicted."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset(self) -> None:
        """Forget all history and statistics."""
        self._counters = [self.WEAK_TAKEN] * self.table_entries
        self.predictions = 0
        self.mispredictions = 0
