"""In-order issue engine with a blocking data cache.

This is the first processor configuration of Section 4.2: the pipeline
stalls for the full latency of every data-cache miss (the cache is
blocking), so data-miss latency is completely exposed on the critical path.
Instruction misses also stall fetch, but because the back end is frequently
stalled anyway, a somewhat smaller fraction of their latency translates into
lost cycles.
"""

from __future__ import annotations

from repro.common.config import CoreKind
from repro.cpu.core_model import CoreModel
from repro.metrics.counts import IntervalCounts


class InOrderCore(CoreModel):
    """Interval timing model for the in-order, blocking-d-cache pipeline."""

    @property
    def kind(self) -> CoreKind:
        return CoreKind.IN_ORDER_BLOCKING

    def interval_cycles(self, counts: IntervalCounts) -> float:
        timing = self.timing
        base = counts.instructions * timing.inorder_base_cpi
        data_stalls = self._dcache_miss_latency(counts) * timing.inorder_dcache_exposure
        fetch_stalls = self._icache_miss_latency(counts) * timing.inorder_icache_exposure
        frontend = self._frontend_cycles(counts)
        return base + data_stalls + fetch_stalls + frontend
