"""Base class and factory for the interval core timing models."""

from __future__ import annotations

from repro.common.config import CoreConfig, CoreKind, SystemConfig
from repro.common.errors import ConfigurationError
from repro.cpu.timing import CoreTimingParameters
from repro.metrics.counts import IntervalCounts


class CoreModel:
    """Turns an interval's activity counts into an execution-time estimate.

    Subclasses implement :meth:`interval_cycles`.  The shared helpers compute
    the L2-hit and memory portions of miss latency so the two models only
    differ in how much of that latency they expose.
    """

    def __init__(self, config: SystemConfig, timing: CoreTimingParameters | None = None) -> None:
        self.config = config
        self.core: CoreConfig = config.core
        self.timing = timing if timing is not None else CoreTimingParameters()
        self._l2_latency = config.l2.hit_latency
        self._memory_latency = config.memory.access_latency(config.l2.geometry.block_bytes)

    # ----------------------------------------------------------------- shared
    def _dcache_miss_latency(self, counts: IntervalCounts) -> float:
        """Total latency (cycles) of the interval's data-side misses, unexposed."""
        l2_portion = counts.l1d_misses * self._l2_latency
        memory_portion = counts.l1d_memory_accesses * self._memory_latency
        return l2_portion + memory_portion

    def _icache_miss_latency(self, counts: IntervalCounts) -> float:
        """Total latency (cycles) of the interval's instruction-side misses."""
        l2_portion = counts.l1i_misses * self._l2_latency
        memory_portion = counts.l1i_memory_accesses * self._memory_latency
        return l2_portion + memory_portion

    def _frontend_cycles(self, counts: IntervalCounts) -> float:
        """Branch misprediction and writeback-buffer stall cycles."""
        return (
            counts.branch_mispredicts * self.core.branch_mispredict_penalty
            + counts.writeback_overflows * self.timing.writeback_overflow_penalty
        )

    # ------------------------------------------------------------- to override
    def interval_cycles(self, counts: IntervalCounts) -> float:
        """Estimated execution time of the interval, in cycles."""
        raise NotImplementedError

    @property
    def kind(self) -> CoreKind:
        """Which core configuration this model implements."""
        raise NotImplementedError


def make_core_model(config: SystemConfig, timing: CoreTimingParameters | None = None) -> CoreModel:
    """Instantiate the core model matching ``config.core.kind``."""
    from repro.cpu.inorder import InOrderCore
    from repro.cpu.ooo import OutOfOrderCore

    if config.core.kind is CoreKind.IN_ORDER_BLOCKING:
        return InOrderCore(config, timing)
    if config.core.kind is CoreKind.OUT_OF_ORDER_NONBLOCKING:
        return OutOfOrderCore(config, timing)
    raise ConfigurationError(f"unknown core kind {config.core.kind!r}")
