"""Out-of-order issue engine with a non-blocking data cache.

This is the second processor configuration of Section 4.2 and the base
system of Table 2: a 4-wide out-of-order engine whose MSHRs let independent
instructions execute under outstanding data misses.  Data-miss latency is
therefore only partially exposed — the exposed fraction shrinks further when
the workload's memory accesses are independent enough to overlap with one
another (memory-level parallelism) — while instruction misses starve the
front end and remain almost fully exposed.
"""

from __future__ import annotations

from repro.common.config import CoreKind
from repro.cpu.core_model import CoreModel
from repro.metrics.counts import IntervalCounts


class OutOfOrderCore(CoreModel):
    """Interval timing model for the out-of-order, non-blocking-d-cache pipeline."""

    @property
    def kind(self) -> CoreKind:
        return CoreKind.OUT_OF_ORDER_NONBLOCKING

    def _memory_overlap(self, counts: IntervalCounts) -> float:
        """How many outstanding data misses overlap on average.

        The overlap is the workload's memory-level parallelism capped by the
        number of MSHRs — the same bound a real non-blocking cache imposes.
        """
        mlp = max(1.0, counts.memory_level_parallelism)
        return min(float(self.core.mshr_entries), mlp)

    def interval_cycles(self, counts: IntervalCounts) -> float:
        timing = self.timing
        base = counts.instructions * timing.ooo_base_cpi
        overlap = self._memory_overlap(counts)
        data_stalls = (
            self._dcache_miss_latency(counts) * timing.ooo_dcache_exposure / overlap
        )
        fetch_stalls = self._icache_miss_latency(counts) * timing.ooo_icache_exposure
        frontend = self._frontend_cycles(counts)
        return base + data_stalls + fetch_stalls + frontend
