"""Benchmark perf-regression gate (``python -m repro bench-compare``).

CI runs the benchmark smoke suite with ``pytest-benchmark`` and feeds the
resulting JSON through :func:`compare_benchmarks` against the committed
baseline (``benchmarks/baseline.json``).  A benchmark whose mean wall time
exceeds its baseline by more than the tolerance fails the build; faster
runs and new benchmarks are reported but never fail.  The baseline is
refreshed with ``bench-compare --update`` (typically after a deliberate
perf-affecting change, committing the new JSON alongside it).

Wall-clock means vary across runner hardware, so the gate is deliberately
insensitive to machine speed: measured means are first *normalized* by the
median measured/baseline ratio across the suite (a uniformly slower or
faster host moves every benchmark by the same factor, which the median
absorbs), and the remaining per-benchmark deviation is compared against a
generous tolerance (±25 % by default).  The gate therefore catches
step-function regressions in individual benchmarks (an accidentally
quadratic path, a lost cache) rather than hardware drift or single-digit
noise.  Normalization needs at least :data:`MIN_NORMALIZE_SAMPLES`
above-floor benchmarks to estimate the hardware factor — below that (and
with ``--absolute``) raw means are compared directly.

The deliberate blind spot: a regression that slows *every* benchmark by
the same factor is indistinguishable from slower hardware, so moderate
uniform slowdowns pass the normalized gate.  Two backstops bound the
damage: the scale itself is printed in every report (a suite-wide jump is
visible in CI logs), and a scale outside ``[1/max_scale, max_scale]``
(``--max-scale``, default 4x) fails the gate outright — no plausible
runner-hardware delta explains an order-of-magnitude shift, so it is
treated as either a global regression or a stale baseline needing an
explicit ``--update``.  Suspected uniform regressions can always be
checked with ``--absolute`` on known hardware.

The baseline file is this module's own minimal format — *not* a raw
pytest-benchmark report — so it diffs cleanly in review::

    {
      "version": 1,
      "note": "...how to regenerate...",
      "benchmarks": {"test_bench_figure4": 12.345, ...}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.common.atomicio import atomic_write_text
from repro.common.errors import ReproError

#: Baseline file schema version.
BASELINE_VERSION = 1

#: Default relative tolerance before a slower mean counts as a regression.
DEFAULT_TOLERANCE = 0.25

#: Benchmarks faster than this (baseline and measured) are never gated:
#: relative noise on sub-50ms timings dwarfs any real signal, and a memoised
#: figure that resolves from the shared context in microseconds must not
#: fail CI because the runner was busy for one scheduler tick.
MIN_GATED_SECONDS = 0.05

#: Minimum above-floor benchmarks required before the median ratio is
#: trusted as a hardware-speed estimate.  With fewer samples the median is
#: dominated by the very benchmarks being gated (one regressed benchmark
#: out of one would normalize itself away), so raw means are compared.
MIN_NORMALIZE_SAMPLES = 3

#: Largest hardware-speed factor normalization will silently absorb; a
#: median ratio outside [1/DEFAULT_MAX_SCALE, DEFAULT_MAX_SCALE] fails the
#: gate (global regression, or a baseline from wildly different hardware
#: that needs an explicit --update).
DEFAULT_MAX_SCALE = 4.0


class BenchGateError(ReproError):
    """Unreadable or malformed benchmark/baseline input."""


def load_benchmark_means(path: Union[str, Path]) -> Dict[str, float]:
    """Extract {benchmark name: mean seconds} from a pytest-benchmark JSON."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchGateError(f"cannot read benchmark results {path}: {exc}") from exc
    try:
        entries = payload["benchmarks"]
        means = {entry["name"]: float(entry["stats"]["mean"]) for entry in entries}
    except (KeyError, TypeError, ValueError) as exc:
        raise BenchGateError(
            f"{path} does not look like pytest-benchmark JSON output: {exc}"
        ) from exc
    if not means:
        raise BenchGateError(f"{path} contains zero benchmarks; nothing to compare")
    return means


def load_baseline(path: Union[str, Path]) -> Dict[str, float]:
    """Read a committed baseline file into {benchmark name: mean seconds}."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchGateError(f"cannot read baseline {path}: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise BenchGateError(
            f"baseline {path} has version {payload.get('version')!r}, "
            f"expected {BASELINE_VERSION}; regenerate it with bench-compare --update"
        )
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise BenchGateError(f"baseline {path} has no 'benchmarks' mapping")
    try:
        return {str(name): float(mean) for name, mean in benchmarks.items()}
    except (TypeError, ValueError) as exc:
        raise BenchGateError(f"baseline {path} has a non-numeric mean: {exc}") from exc


def write_baseline(path: Union[str, Path], means: Dict[str, float]) -> None:
    """Write ``means`` as a fresh baseline file (sorted, review-friendly)."""
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "Benchmark wall-time baseline for the CI perf gate.  Regenerate with: "
            "PYTHONPATH=src python -m pytest benchmarks/ -q "
            "--benchmark-json=results.json && "
            "PYTHONPATH=src python -m repro bench-compare results.json --update "
            "(run with the same REPRO_BENCH_INSTRUCTIONS CI uses)."
        ),
        "benchmarks": {name: round(mean, 6) for name, mean in sorted(means.items())},
    }
    try:
        # Atomic rename: a crash mid-update can never leave the committed
        # baseline torn (the perf gate would reject the whole CI run).
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    except OSError as exc:
        raise BenchGateError(f"cannot write baseline {path}: {exc}") from exc


@dataclass
class BenchComparison:
    """Outcome of gating one results file against one baseline."""

    tolerance: float
    #: Hardware-speed factor divided out of every measured mean before
    #: gating (1.0 when normalization was disabled or under-sampled).
    scale: float = 1.0
    #: Set when the scale itself fell outside the trusted band — the gate
    #: fails regardless of per-benchmark classifications.
    scale_out_of_bounds: bool = False
    #: name -> (baseline mean, measured mean) for means above tolerance.
    regressions: Dict[str, tuple] = field(default_factory=dict)
    #: name -> (baseline mean, measured mean) for means below -tolerance.
    improvements: Dict[str, tuple] = field(default_factory=dict)
    #: name -> (baseline mean, measured mean) for means within tolerance.
    stable: Dict[str, tuple] = field(default_factory=dict)
    #: benchmarks present in the results but absent from the baseline.
    new: List[str] = field(default_factory=list)
    #: benchmarks present in the baseline but absent from the results.
    missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and nothing silently disappeared.

        A benchmark missing from the results fails the gate too: deleting
        (or failing to collect) the slow benchmark must not read as a perf
        win.  So does a hardware scale outside the trusted band — a
        suite-wide order-of-magnitude shift is a global regression or a
        stale baseline, never normal runner drift.
        """
        return not self.regressions and not self.missing and not self.scale_out_of_bounds

    def format_report(self) -> str:
        """Human-readable gate report, worst news first."""
        lines = [
            f"benchmark gate: tolerance ±{self.tolerance * 100:.0f}%, "
            f"hardware scale {self.scale:.3f}x "
            f"({len(self.stable)} stable, {len(self.improvements)} faster, "
            f"{len(self.regressions)} regressed, {len(self.new)} new, "
            f"{len(self.missing)} missing)"
        ]

        def _rows(mapping: Dict[str, tuple], verdict: str) -> None:
            # max() guards the ratio against a baseline mean that rounded
            # to exactly zero (sub-microsecond benchmark).
            for name, (base, measured) in sorted(
                mapping.items(),
                key=lambda item: item[1][1] / max(item[1][0], 1e-9),
                reverse=True,
            ):
                delta = (measured - base) / max(base, 1e-9) * 100.0
                lines.append(
                    f"  {verdict:<10} {name}: {base:.3f}s -> {measured:.3f}s ({delta:+.1f}%)"
                )

        if self.scale_out_of_bounds:
            lines.append(
                f"  SCALE      suite-wide factor {self.scale:.2f}x is outside the trusted "
                f"band — global regression, or a stale baseline (refresh with --update)"
            )
        _rows(self.regressions, "REGRESSED")
        for name in self.missing:
            lines.append(f"  MISSING    {name}: present in baseline, absent from results")
        _rows(self.improvements, "faster")
        _rows(self.stable, "ok")
        for name in sorted(self.new):
            lines.append(f"  new        {name}: not in baseline (add via --update)")
        lines.append("gate PASSED" if self.ok else "gate FAILED")
        return "\n".join(lines)


def _hardware_scale(results: Dict[str, float], baseline: Dict[str, float]) -> float:
    """Median measured/baseline ratio over the above-floor benchmarks.

    A different host moves every benchmark by roughly the same factor; the
    median estimates that factor robustly (a single regressed benchmark
    barely shifts it in a suite of several).  Returns 1.0 when fewer than
    :data:`MIN_NORMALIZE_SAMPLES` benchmarks qualify — with that few, the
    gated benchmarks would dominate their own normalizer.
    """
    ratios = sorted(
        results[name] / max(base, 1e-9)
        for name, base in baseline.items()
        if name in results
        and base >= MIN_GATED_SECONDS
        and results[name] >= MIN_GATED_SECONDS
    )
    if len(ratios) < MIN_NORMALIZE_SAMPLES:
        return 1.0
    middle = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[middle]
    return (ratios[middle - 1] + ratios[middle]) / 2.0


def compare_benchmarks(
    results: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    normalize: bool = True,
    max_scale: float = DEFAULT_MAX_SCALE,
) -> BenchComparison:
    """Classify every benchmark mean against its baseline.

    With ``normalize`` (the default) every measured mean is first divided
    by the suite-wide hardware factor (see :func:`_hardware_scale`), so a
    uniformly slower or faster host gates clean and only *relative* shape
    changes fail; a factor outside ``[1/max_scale, max_scale]`` is never
    absorbed and fails the gate itself.  ``tolerance`` is relative: a
    (normalized) mean above ``baseline * (1 + tolerance)`` is a
    regression, below ``baseline * (1 - tolerance)`` an improvement, and
    anything between is stable.  The reported per-benchmark means are the
    normalized ones, so the printed deltas match the gate's decisions.
    """
    if tolerance < 0:
        raise BenchGateError(f"tolerance must be non-negative, got {tolerance}")
    if max_scale < 1.0:
        raise BenchGateError(f"max scale must be at least 1.0, got {max_scale}")
    scale = _hardware_scale(results, baseline) if normalize else 1.0
    comparison = BenchComparison(tolerance=tolerance, scale=scale)
    if not (1.0 / max_scale <= scale <= max_scale):
        # Do not normalize by a factor we refuse to trust: gate the raw
        # means so the report shows the real deltas behind the failure.
        comparison.scale_out_of_bounds = True
        scale = 1.0
    for name, base in baseline.items():
        raw = results.get(name)
        if raw is None:
            comparison.missing.append(name)
            continue
        measured = raw / scale
        if base < MIN_GATED_SECONDS and measured < MIN_GATED_SECONDS:
            comparison.stable[name] = (base, measured)
        elif measured > base * (1.0 + tolerance):
            comparison.regressions[name] = (base, measured)
        elif measured < base * (1.0 - tolerance):
            comparison.improvements[name] = (base, measured)
        else:
            comparison.stable[name] = (base, measured)
    comparison.missing.sort()
    comparison.new = sorted(set(results) - set(baseline))
    return comparison
