"""repro — resizable cache design-space exploration.

A from-scratch reproduction of *"Exploiting Choice in Resizable Cache Design
to Optimize Deep-Submicron Processor Energy-Delay"* (Yang, Powell, Falsafi,
Vijaykumar — HPCA 2002): trace-driven cache hierarchy simulation, the
selective-ways / selective-sets / hybrid resizing organizations, static and
miss-ratio-based dynamic resizing strategies, Wattch-style energy accounting
and the experiment harnesses that regenerate every table and figure of the
paper's evaluation.

Quickstart::

    from repro import (
        SystemConfig, Simulator, L1Setup, SelectiveSets, StaticResizing,
        WorkloadGenerator, get_profile,
    )

    system = SystemConfig()                       # Table 2 base system
    trace = WorkloadGenerator(get_profile("gcc")).generate(60_000)
    organization = SelectiveSets(system.l1d)
    simulator = Simulator(system)

    baseline = simulator.run(trace)
    resized = simulator.run(
        trace,
        d_setup=L1Setup(organization, StaticResizing(organization.config_for_capacity(16 * 1024))),
    )
    print(resized.energy_delay_reduction(baseline))
"""

from repro.common.config import (
    CacheGeometry,
    CacheTiming,
    CoreConfig,
    CoreKind,
    L2Config,
    MemoryConfig,
    SystemConfig,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    ResizingError,
    SimulationError,
    WorkloadError,
)
from repro.cache.cache import AccessResult, Cache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.replacement import ReplacementPolicy
from repro.cpu.timing import CoreTimingParameters
from repro.energy.technology import TechnologyParameters
from repro.metrics.breakdown import EnergyBreakdown
from repro.metrics.counts import IntervalCounts
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.organization import ResizingOrganization, SizeConfig
from repro.resizing.profiler import DynamicParameters, ProfilePoint
from repro.resizing.resizable_cache import ResizableCache
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays
from repro.resizing.static_strategy import StaticResizing
from repro.resizing.strategy import NoResizing, ResizingStrategy
from repro.sim.engine import (
    DEFAULT_ENGINE,
    ColumnarEngine,
    ReferenceEngine,
    ReplayEngine,
    available_engines,
    register_engine,
)
from repro.sim.future import SimFuture
from repro.sim.jobcache import JobCache
from repro.sim.results import SimulationResult
from repro.sim.ladder import LadderEngine, run_fused
from repro.sim.runner import (
    L1SetupSpec,
    LadderJob,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    register_organization,
    set_trace_cache,
)
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.tracecache import TraceCache
from repro.sim.sweep import (
    FUSED,
    LADDER_MODES,
    PER_CONFIG,
    StaticProfile,
    StaticProfileFuture,
    Sweep,
    profile_static,
    run_baseline,
    run_dynamic,
    submit_baseline,
    submit_dynamic,
    submit_profile_static,
    submit_with_setups,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import (
    SPEC_APPLICATION_NAMES,
    WorkloadProfile,
    get_profile,
    iter_profiles,
)
from repro.workloads.trace import InstructionRecord, Trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "CacheGeometry",
    "CacheTiming",
    "L2Config",
    "MemoryConfig",
    "CoreConfig",
    "CoreKind",
    "CoreTimingParameters",
    "TechnologyParameters",
    # errors
    "ReproError",
    "ConfigurationError",
    "ResizingError",
    "SimulationError",
    "WorkloadError",
    # cache substrate
    "Cache",
    "AccessResult",
    "CacheHierarchy",
    "ReplacementPolicy",
    # resizing
    "ResizingOrganization",
    "SizeConfig",
    "SelectiveWays",
    "SelectiveSets",
    "HybridSetsAndWays",
    "ResizableCache",
    "ResizingStrategy",
    "NoResizing",
    "StaticResizing",
    "DynamicResizing",
    "ProfilePoint",
    "DynamicParameters",
    # metrics
    "EnergyBreakdown",
    "IntervalCounts",
    # simulation
    "Simulator",
    "L1Setup",
    "SimulationResult",
    # the unified sweep facade (canonical entry point)
    "Sweep",
    "StaticProfile",
    "run_baseline",
    "profile_static",
    "run_dynamic",
    # sweep engine
    "SimJob",
    "TraceSpec",
    "StrategySpec",
    "L1SetupSpec",
    "SweepRunner",
    "JobCache",
    "register_organization",
    # replay engines
    "ReplayEngine",
    "ReferenceEngine",
    "ColumnarEngine",
    "DEFAULT_ENGINE",
    "available_engines",
    "register_engine",
    # trace cache
    "TraceCache",
    "set_trace_cache",
    # deferred-submission job graph
    "SimFuture",
    "StaticProfileFuture",
    "submit_baseline",
    "submit_with_setups",
    "submit_profile_static",
    "submit_dynamic",
    # fused ladder replay
    "LadderEngine",
    "LadderJob",
    "run_fused",
    "FUSED",
    "PER_CONFIG",
    "LADDER_MODES",
    # workloads
    "WorkloadProfile",
    "WorkloadGenerator",
    "Trace",
    "InstructionRecord",
    "get_profile",
    "iter_profiles",
    "SPEC_APPLICATION_NAMES",
]
