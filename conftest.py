"""Pytest bootstrap.

Makes the ``src`` layout importable even when the package has not been
installed (useful on offline machines where ``pip install -e .`` cannot
resolve its build backend).  When the package *is* installed this is a
harmless no-op because the installed location takes precedence only if it
appears earlier on ``sys.path``; both point at the same files for an
editable install.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
