"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that the package can also be installed in environments whose tooling only
supports the legacy ``setup.py`` path (for example fully offline machines
where PEP 517 build isolation cannot download a wheel backend:
``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
